"""Permutations of physical-qubit states and their SWAP costs.

The cost function of the paper (Eq. 5) charges ``7 * swaps(pi)`` for applying
a permutation ``pi`` to the physical-qubit states before a gate, where
``swaps(pi)`` is the minimal number of SWAP operations — each acting on an
edge of the coupling map — that realises ``pi``.  The paper computes this
table once per architecture by exhaustive search; :class:`PermutationTable`
does the same via breadth-first search over the permutation group generated
by the coupling edges.

Conventions
-----------
A permutation is a tuple ``pi`` of length ``m`` with ``pi[i] = j`` meaning
"the state located at physical qubit ``i`` moves to physical qubit ``j``".
A mapping of ``n`` logical qubits is a tuple ``mapping`` of length ``n`` with
``mapping[j] = i`` meaning "logical qubit ``j`` sits on physical qubit ``i``"
(``-1`` marks an unmapped logical qubit; mappings used here are always total).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.arch.coupling import CouplingMap

Permutation = Tuple[int, ...]
Mapping = Tuple[int, ...]
SwapEdge = Tuple[int, int]


def identity_permutation(size: int) -> Permutation:
    """The identity permutation on *size* elements."""
    return tuple(range(size))


def all_permutations(size: int) -> Iterator[Permutation]:
    """Iterate over all permutations of ``range(size)``."""
    return iter(itertools.permutations(range(size)))


def compose_permutations(first: Permutation, second: Permutation) -> Permutation:
    """Return the permutation "apply *first*, then *second*"."""
    if len(first) != len(second):
        raise ValueError("cannot compose permutations of different sizes")
    return tuple(second[first[i]] for i in range(len(first)))


def invert_permutation(perm: Permutation) -> Permutation:
    """Return the inverse permutation."""
    inverse = [0] * len(perm)
    for source, destination in enumerate(perm):
        inverse[destination] = source
    return tuple(inverse)


def apply_permutation(perm: Permutation, mapping: Mapping) -> Mapping:
    """Apply *perm* to the physical positions of a logical-to-physical *mapping*.

    If logical qubit ``j`` sat on physical qubit ``mapping[j]``, it ends up on
    ``perm[mapping[j]]`` after the permutation.
    """
    return tuple(perm[position] for position in mapping)


def permutation_between(old: Mapping, new: Mapping, size: int) -> Permutation:
    """The unique full permutation turning *old* into *new* when ``n == m``.

    Raises:
        ValueError: If the mappings are not total (``n < m``); use
            :meth:`PermutationTable.transition_cost` in that case.
    """
    if len(old) != len(new):
        raise ValueError("mappings must have the same length")
    if len(old) != size:
        raise ValueError(
            "permutation_between requires total mappings (n == m); "
            "use PermutationTable.transition_cost for partial mappings"
        )
    perm = [-1] * size
    for logical in range(len(old)):
        perm[old[logical]] = new[logical]
    if -1 in perm:
        raise ValueError("mappings are not injective")
    return tuple(perm)


def swap_transposition(size: int, edge: SwapEdge) -> Permutation:
    """The transposition exchanging the two endpoints of *edge*."""
    a, b = edge
    perm = list(range(size))
    perm[a], perm[b] = perm[b], perm[a]
    return tuple(perm)


def nearest_free_completion(
    fixed: Dict[int, int],
    size: int,
    distances: Dict[int, Dict[int, int]],
) -> Optional[Permutation]:
    """Complete a partial permutation by nearest-free-destination matching.

    *fixed* maps source positions to their forced destinations; every other
    source is matched greedily (in ascending source order) to the nearest
    still-free destination by coupling-graph distance, preferring staying put
    on ties.  The greedy matching is an upper-bound heuristic, not an optimal
    assignment — callers needing the minimum must still search.

    Returns:
        The completed permutation, or ``None`` when some free source has no
        reachable free destination (disconnected graph).
    """
    used = set(fixed.values())
    free_destinations = [i for i in range(size) if i not in used]
    perm: List[int] = [-1] * size
    for source, destination in fixed.items():
        perm[source] = destination
    for source in range(size):
        if perm[source] != -1:
            continue
        row = distances.get(source, {})
        best = None
        best_key = None
        for destination in free_destinations:
            hops = row.get(destination)
            if hops is None:
                continue
            # Prefer closer destinations; on ties prefer staying put, then
            # the smallest index — fully deterministic.
            key = (hops, 0 if destination == source else 1, destination)
            if best_key is None or key < best_key:
                best = destination
                best_key = key
        if best is None:
            return None
        perm[source] = best
        free_destinations.remove(best)
    return tuple(perm)


def minimal_swap_sequences(
    coupling: CouplingMap,
    max_permutations: Optional[int] = None,
) -> Dict[Permutation, List[SwapEdge]]:
    """Breadth-first search of minimal SWAP sequences for every reachable permutation.

    Args:
        coupling: The architecture whose undirected edges generate the group.
        max_permutations: Optional safety limit on the number of permutations
            enumerated (useful for large devices); ``None`` means no limit.

    Returns:
        A dictionary mapping each reachable permutation to one minimal-length
        sequence of SWAP edges realising it.  The identity maps to ``[]``.
    """
    size = coupling.num_qubits
    edges = sorted(coupling.undirected_edges)
    # The transposition of an edge does not depend on the BFS state; building
    # them once instead of once per (node, edge) pair makes the exhaustive
    # enumeration noticeably cheaper on larger subsets.
    generators: List[Tuple[SwapEdge, Permutation]] = [
        (edge, swap_transposition(size, edge)) for edge in edges
    ]
    identity = identity_permutation(size)
    sequences: Dict[Permutation, List[SwapEdge]] = {identity: []}
    frontier: List[Permutation] = [identity]
    while frontier:
        next_frontier: List[Permutation] = []
        for perm in frontier:
            base_sequence = sequences[perm]
            for edge, transposition in generators:
                successor = compose_permutations(perm, transposition)
                if successor in sequences:
                    continue
                sequences[successor] = base_sequence + [edge]
                next_frontier.append(successor)
                if max_permutations is not None and len(sequences) >= max_permutations:
                    return sequences
        frontier = next_frontier
    return sequences


class PermutationTable:
    """Pre-computed ``swaps(pi)`` table for one coupling map.

    The table is built once (exhaustively, as in the paper) and then queried
    by the exact mappers both for full permutations and for transitions
    between (possibly partial) logical-to-physical mappings.

    Args:
        coupling: The architecture.
        max_qubits_exhaustive: Guard against accidentally enumerating the
            permutation group of a large device (``m!`` elements).
    """

    def __init__(self, coupling: CouplingMap, max_qubits_exhaustive: int = 8):
        if coupling.num_qubits > max_qubits_exhaustive:
            raise ValueError(
                f"refusing to enumerate {coupling.num_qubits}! permutations; "
                "restrict the architecture to a subset of physical qubits first"
            )
        self.coupling = coupling
        self.size = coupling.num_qubits
        self._sequences = minimal_swap_sequences(coupling)
        self._distance_matrix: Optional[Dict[int, Dict[int, int]]] = None

    @classmethod
    def from_sequences(
        cls,
        coupling: CouplingMap,
        sequences: Dict[Permutation, List[SwapEdge]],
    ) -> "PermutationTable":
        """Rebuild a table from previously computed swap sequences.

        Used by the persistent cache layer (:mod:`repro.arch.diskcache`) to
        warm-start a table from disk without re-running the BFS.  The caller
        is responsible for *sequences* actually belonging to *coupling*.
        """
        table = cls.__new__(cls)
        table.coupling = coupling
        table.size = coupling.num_qubits
        table._sequences = {
            tuple(perm): [tuple(edge) for edge in seq]
            for perm, seq in sequences.items()
        }
        table._distance_matrix = None
        return table

    def sequences(self) -> Dict[Permutation, List[SwapEdge]]:
        """A copy of the full permutation-to-swap-sequence table."""
        return {perm: list(seq) for perm, seq in self._sequences.items()}

    # ------------------------------------------------------------------
    # Full permutations
    # ------------------------------------------------------------------
    def reachable(self, perm: Permutation) -> bool:
        """True when *perm* can be realised by SWAPs on the coupling edges."""
        return tuple(perm) in self._sequences

    def swaps(self, perm: Permutation) -> int:
        """Minimal number of SWAPs realising *perm* (the paper's ``swaps(pi)``).

        Raises:
            KeyError: If the permutation is not reachable (disconnected device).
        """
        return len(self._sequences[tuple(perm)])

    def swap_sequence(self, perm: Permutation) -> List[SwapEdge]:
        """One minimal sequence of SWAP edges realising *perm*."""
        return list(self._sequences[tuple(perm)])

    def permutations(self) -> Iterator[Permutation]:
        """Iterate over all reachable permutations."""
        return iter(self._sequences.keys())

    def __len__(self) -> int:
        return len(self._sequences)

    # ------------------------------------------------------------------
    # Mapping transitions
    # ------------------------------------------------------------------
    def _fixed_assignments(self, old: Mapping, new: Mapping) -> Dict[int, int]:
        """The source-to-destination constraints implied by a mapping pair."""
        if len(old) != len(new):
            raise ValueError("mappings must have the same length")
        fixed: Dict[int, int] = {}
        for logical in range(len(old)):
            source, destination = old[logical], new[logical]
            if source in fixed and fixed[source] != destination:
                raise ValueError("old mapping is not injective")
            fixed[source] = destination
        return fixed

    def _distances(self) -> Dict[int, Dict[int, int]]:
        if self._distance_matrix is None:
            self._distance_matrix = self.coupling.distance_matrix()
        return self._distance_matrix

    def _transition_lower_bound(self, fixed: Dict[int, int]) -> int:
        """A reachable lower bound on the SWAPs of any consistent completion.

        Every SWAP moves two states one edge each, so the total graph
        distance still to travel drops by at most two per SWAP; a single
        state's remaining distance drops by at most one.  Fixed states must
        travel at least ``d(source, destination)``; free states at least the
        distance to their *nearest* free destination (a valid per-state
        minimum even though the joint assignment may not achieve all of
        them simultaneously).
        """
        distances = self._distances()
        used = set(fixed.values())
        free_destinations = [i for i in range(self.size) if i not in used]
        total = 0
        worst = 0
        for source in range(self.size):
            if source in fixed:
                hops = distances[source].get(fixed[source])
                if hops is None:
                    # Unreachable transition; the caller's scan will raise.
                    return 0
            else:
                reachable = [
                    distances[source][dest]
                    for dest in free_destinations
                    if dest in distances[source]
                ]
                if not reachable:
                    return 0
                hops = min(reachable)
            total += hops
            worst = max(worst, hops)
        return max(worst, (total + 1) // 2)

    def consistent_permutations(self, old: Mapping, new: Mapping) -> Iterator[Permutation]:
        """All full permutations ``pi`` with ``pi[old[j]] == new[j]`` for every ``j``.

        For total mappings there is exactly one; for partial mappings the
        unmapped physical qubits may be permuted freely among themselves.
        """
        fixed = self._fixed_assignments(old, new)
        free_sources = [i for i in range(self.size) if i not in fixed]
        used_destinations = set(fixed.values())
        free_destinations = [i for i in range(self.size) if i not in used_destinations]
        for completion in itertools.permutations(free_destinations):
            perm = [0] * self.size
            for source, destination in fixed.items():
                perm[source] = destination
            for source, destination in zip(free_sources, completion):
                perm[source] = destination
            yield tuple(perm)

    def _best_transition(
        self, old: Mapping, new: Mapping
    ) -> Tuple[Permutation, int]:
        """The cheapest consistent completion and its SWAP count.

        Completing a partial transition is no longer a blind scan over
        ``free!`` completions: a nearest-free-destination matching is tried
        first and accepted outright when it meets the distance lower bound,
        and the exhaustive fallback stops as soon as any completion does.
        Minimality is unaffected — the scan only ever stops at a proven
        lower bound.
        """
        fixed = self._fixed_assignments(old, new)
        lower_bound = self._transition_lower_bound(fixed)
        best_perm: Optional[Permutation] = None
        best_count: Optional[int] = None
        candidate = nearest_free_completion(fixed, self.size, self._distances())
        if candidate is not None and candidate in self._sequences:
            best_perm = candidate
            best_count = len(self._sequences[candidate])
            if best_count <= lower_bound:
                return best_perm, best_count
        for perm in self.consistent_permutations(old, new):
            if perm not in self._sequences:
                continue
            count = len(self._sequences[perm])
            if best_count is None or count < best_count:
                best_count = count
                best_perm = perm
                if best_count <= lower_bound:
                    break
        if best_perm is None or best_count is None:
            raise ValueError("no permutation realises the requested transition")
        return best_perm, best_count

    def transition_cost(self, old: Mapping, new: Mapping) -> int:
        """Minimal number of SWAPs turning mapping *old* into mapping *new*."""
        return self._best_transition(old, new)[1]

    def transition_sequence(self, old: Mapping, new: Mapping) -> List[SwapEdge]:
        """A minimal SWAP-edge sequence turning mapping *old* into mapping *new*."""
        best_perm, _ = self._best_transition(old, new)
        return list(self._sequences[best_perm])


__all__ = [
    "Permutation",
    "Mapping",
    "SwapEdge",
    "identity_permutation",
    "all_permutations",
    "compose_permutations",
    "invert_permutation",
    "apply_permutation",
    "permutation_between",
    "swap_transposition",
    "nearest_free_completion",
    "minimal_swap_sequences",
    "PermutationTable",
]
