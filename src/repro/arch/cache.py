"""Process-wide caches for per-architecture artefacts.

The exact engines repeatedly rebuild two expensive, read-only artefacts:

* the :class:`~repro.arch.permutations.PermutationTable` of a coupling map
  (exhaustive BFS over the permutation group — ``SATMapper`` used to rebuild
  it for *every* subset instance of every ``map`` call),
* the list of connected physical-qubit subsets of a given size
  (:func:`~repro.arch.subsets.connected_subsets`).

Both depend only on the structure of the coupling map, so this module
memoises them by :meth:`~repro.arch.coupling.CouplingMap.canonical_key`.
Distinct subsets of a device that induce the same re-indexed edge set share
one table, and every circuit of a batch reuses the artefacts of the first.

The caches are process-wide, thread-safe and LRU-bounded (:data:`MAX_ENTRIES`
per cache, far above what mapping a handful of devices needs), so a
long-running service cannot grow them without limit.  Worker *processes* of a
:class:`~repro.pipeline.pipeline.MappingPipeline` each populate their own
copy (forked children inherit the parent's warm cache on platforms whose
start method is ``fork``).

This module lives in :mod:`repro.arch` because the cached artefacts depend
only on the architecture layer; :mod:`repro.pipeline.cache` re-exports it as
the service-facing entry point.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.permutations import PermutationTable
from repro.arch.subsets import connected_subsets

_CacheKey = Tuple[int, Tuple[Tuple[int, int], ...]]

#: Per-cache LRU capacity.
MAX_ENTRIES = 128

_LOCK = threading.Lock()
_TABLES: "OrderedDict[_CacheKey, PermutationTable]" = OrderedDict()
_SUBSETS: "OrderedDict[Tuple[_CacheKey, int], Tuple[Tuple[int, ...], ...]]" = OrderedDict()
_STATS = {
    "permutation_table_hits": 0,
    "permutation_table_misses": 0,
    "connected_subsets_hits": 0,
    "connected_subsets_misses": 0,
}


def shared_permutation_table(
    coupling: CouplingMap, max_qubits_exhaustive: int = 8
) -> PermutationTable:
    """Return the (cached) :class:`PermutationTable` of *coupling*.

    The returned table is shared between callers and must be treated as
    read-only (it is, in normal use: :class:`PermutationTable` exposes no
    mutating API).

    Args:
        coupling: The architecture.
        max_qubits_exhaustive: Same guard as the :class:`PermutationTable`
            constructor; checked before any cache lookup so that a permissive
            earlier call cannot mask a stricter later one.
    """
    if coupling.num_qubits > max_qubits_exhaustive:
        raise ValueError(
            f"refusing to enumerate {coupling.num_qubits}! permutations; "
            "restrict the architecture to a subset of physical qubits first"
        )
    key = coupling.canonical_key()
    with _LOCK:
        table = _TABLES.get(key)
        if table is not None:
            _STATS["permutation_table_hits"] += 1
            _TABLES.move_to_end(key)
            return table
    # Build outside the lock: the BFS can take a while and concurrent misses
    # for *different* architectures should not serialise.  A racing build of
    # the same key is harmless; ``setdefault`` keeps exactly one winner.
    table = PermutationTable(coupling, max_qubits_exhaustive=max_qubits_exhaustive)
    with _LOCK:
        _STATS["permutation_table_misses"] += 1
        table = _TABLES.setdefault(key, table)
        _TABLES.move_to_end(key)
        while len(_TABLES) > MAX_ENTRIES:
            _TABLES.popitem(last=False)
        return table


def shared_connected_subsets(coupling: CouplingMap, size: int) -> List[Tuple[int, ...]]:
    """Memoised :func:`~repro.arch.subsets.connected_subsets`.

    Returns a fresh list on every call (the cached tuples themselves are
    immutable), so callers may sort or slice the result freely.
    """
    key = (coupling.canonical_key(), size)
    with _LOCK:
        cached = _SUBSETS.get(key)
        if cached is not None:
            _STATS["connected_subsets_hits"] += 1
            _SUBSETS.move_to_end(key)
            return list(cached)
    subsets = tuple(connected_subsets(coupling, size))
    with _LOCK:
        _STATS["connected_subsets_misses"] += 1
        subsets = _SUBSETS.setdefault(key, subsets)
        _SUBSETS.move_to_end(key)
        while len(_SUBSETS) > MAX_ENTRIES:
            _SUBSETS.popitem(last=False)
        return list(subsets)


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters plus current cache sizes (a snapshot copy)."""
    with _LOCK:
        stats = dict(_STATS)
        stats["permutation_tables_cached"] = len(_TABLES)
        stats["connected_subset_lists_cached"] = len(_SUBSETS)
    return stats


def clear_caches() -> None:
    """Drop all cached artefacts and reset the counters (mainly for tests)."""
    with _LOCK:
        _TABLES.clear()
        _SUBSETS.clear()
        for key in _STATS:
            _STATS[key] = 0


__all__ = [
    "MAX_ENTRIES",
    "shared_permutation_table",
    "shared_connected_subsets",
    "cache_stats",
    "clear_caches",
]
