"""Process-wide caches for per-architecture artefacts.

The exact engines repeatedly rebuild two expensive, read-only artefacts:

* the :class:`~repro.arch.permutations.PermutationTable` of a coupling map
  (exhaustive BFS over the permutation group — ``SATMapper`` used to rebuild
  it for *every* subset instance of every ``map`` call),
* the list of connected physical-qubit subsets of a given size
  (:func:`~repro.arch.subsets.connected_subsets`).

Both depend only on the structure of the coupling map, so this module
memoises them by :meth:`~repro.arch.coupling.CouplingMap.canonical_key`.
Distinct subsets of a device that induce the same re-indexed edge set share
one table, and every circuit of a batch reuses the artefacts of the first.

The caches are process-wide, thread-safe and LRU-bounded (:data:`MAX_ENTRIES`
per cache, far above what mapping a handful of devices needs), so a
long-running service cannot grow them without limit.  Worker *processes* of a
:class:`~repro.pipeline.pipeline.MappingPipeline` each populate their own
copy (forked children inherit the parent's warm cache on platforms whose
start method is ``fork``).

This module lives in :mod:`repro.arch` because the cached artefacts depend
only on the architecture layer; :mod:`repro.pipeline.cache` re-exports it as
the service-facing entry point.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.diskcache import DistanceDiskStore, PermutationDiskStore
from repro.arch.permutations import PermutationTable
from repro.arch.subsets import connected_subsets

_CacheKey = Tuple[int, Tuple[Tuple[int, int], ...]]

#: Per-cache LRU capacity.
MAX_ENTRIES = 128

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_LOCK = threading.Lock()
_TABLES: "OrderedDict[_CacheKey, PermutationTable]" = OrderedDict()
_SUBSETS: "OrderedDict[Tuple[_CacheKey, int], Tuple[Tuple[int, ...], ...]]" = OrderedDict()
_DISTANCES: "OrderedDict[_CacheKey, Dict[int, Dict[int, int]]]" = OrderedDict()
_SYNTHESIZERS: "OrderedDict[Tuple[_CacheKey, int], object]" = OrderedDict()
_STATS = {
    "permutation_table_hits": 0,
    "permutation_table_misses": 0,
    "permutation_table_disk_hits": 0,
    "permutation_table_disk_writes": 0,
    "connected_subsets_hits": 0,
    "connected_subsets_misses": 0,
    "distance_matrix_hits": 0,
    "distance_matrix_misses": 0,
    "distance_matrix_disk_hits": 0,
    "distance_matrix_disk_writes": 0,
    "synthesizer_hits": 0,
    "synthesizer_misses": 0,
    # Backend selections: the perf gate pins that small devices never take
    # the routed (upper-bound) path where the exact table is available.
    "synthesizer_table_selected": 0,
    "synthesizer_routed_selected": 0,
}

# Explicitly configured cache directory; ``False`` means "not configured,
# fall back to the environment variable" (``None`` disables the disk layer).
_CACHE_DIR: object = False


def set_cache_dir(path: Optional[str]) -> None:
    """Configure the on-disk warm-start layer.

    Args:
        path: Cache directory for persisted permutation tables, or ``None``
            to disable the disk layer (the in-memory caches keep working).
            Overrides the ``REPRO_CACHE_DIR`` environment variable.
    """
    global _CACHE_DIR
    with _LOCK:
        _CACHE_DIR = None if path is None else str(path)


def reset_cache_dir() -> None:
    """Forget any explicit setting; ``REPRO_CACHE_DIR`` applies again."""
    global _CACHE_DIR
    with _LOCK:
        _CACHE_DIR = False


def get_cache_dir() -> Optional[str]:
    """The active cache directory (explicit setting, else ``REPRO_CACHE_DIR``)."""
    with _LOCK:
        configured = _CACHE_DIR
    if configured is not False:
        return configured  # type: ignore[return-value]
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    return env or None


def _disk_store() -> Optional[PermutationDiskStore]:
    cache_dir = get_cache_dir()
    if cache_dir is None:
        return None
    return PermutationDiskStore(cache_dir)


def shared_permutation_table(
    coupling: CouplingMap, max_qubits_exhaustive: int = 8
) -> PermutationTable:
    """Return the (cached) :class:`PermutationTable` of *coupling*.

    The returned table is shared between callers and must be treated as
    read-only (it is, in normal use: :class:`PermutationTable` exposes no
    mutating API).

    Args:
        coupling: The architecture.
        max_qubits_exhaustive: Same guard as the :class:`PermutationTable`
            constructor; checked before any cache lookup so that a permissive
            earlier call cannot mask a stricter later one.
    """
    if coupling.num_qubits > max_qubits_exhaustive:
        raise ValueError(
            f"refusing to enumerate {coupling.num_qubits}! permutations; "
            "restrict the architecture to a subset of physical qubits first"
        )
    key = coupling.canonical_key()
    with _LOCK:
        table = _TABLES.get(key)
        if table is not None:
            _STATS["permutation_table_hits"] += 1
            _TABLES.move_to_end(key)
            return table
    # Build outside the lock: the BFS can take a while and concurrent misses
    # for *different* architectures should not serialise.  A racing build of
    # the same key is harmless; ``setdefault`` keeps exactly one winner.
    # A configured disk layer is consulted first so that a restarted process
    # warm-starts from the artefacts of its predecessors instead of
    # re-running the BFS.
    store = _disk_store()
    table = store.load(coupling) if store is not None else None
    disk_hit = table is not None
    if table is None:
        table = PermutationTable(coupling, max_qubits_exhaustive=max_qubits_exhaustive)
    with _LOCK:
        _STATS["permutation_table_misses"] += 1
        if disk_hit:
            _STATS["permutation_table_disk_hits"] += 1
        winner = _TABLES.setdefault(key, table)
        _TABLES.move_to_end(key)
        while len(_TABLES) > MAX_ENTRIES:
            _TABLES.popitem(last=False)
    if store is not None and not disk_hit and winner is table:
        try:
            store.save(table)
        except OSError:
            pass  # a read-only cache directory must not fail the mapping
        else:
            with _LOCK:
                _STATS["permutation_table_disk_writes"] += 1
    return winner


def _distance_disk_store() -> Optional[DistanceDiskStore]:
    cache_dir = get_cache_dir()
    if cache_dir is None:
        return None
    return DistanceDiskStore(cache_dir)


def shared_distance_matrix(coupling: CouplingMap) -> Dict[int, Dict[int, int]]:
    """The (cached) all-pairs shortest-path distance matrix of *coupling*.

    Shared between the heuristics' lookahead and the routed SWAP synthesis
    backend; callers must treat the returned dictionary as read-only.  A
    configured cache directory persists the matrix next to the permutation
    tables so restarted workers skip the all-pairs BFS.
    """
    key = coupling.canonical_key()
    with _LOCK:
        cached = _DISTANCES.get(key)
        if cached is not None:
            _STATS["distance_matrix_hits"] += 1
            _DISTANCES.move_to_end(key)
            return cached
    store = _distance_disk_store()
    distances = store.load(coupling) if store is not None else None
    disk_hit = distances is not None
    if distances is None:
        distances = coupling.distance_matrix()
    with _LOCK:
        _STATS["distance_matrix_misses"] += 1
        if disk_hit:
            _STATS["distance_matrix_disk_hits"] += 1
        winner = _DISTANCES.setdefault(key, distances)
        _DISTANCES.move_to_end(key)
        while len(_DISTANCES) > MAX_ENTRIES:
            _DISTANCES.popitem(last=False)
    if store is not None and not disk_hit and winner is distances:
        try:
            store.save(coupling, distances)
        except OSError:
            pass  # a read-only cache directory must not fail the mapping
        else:
            with _LOCK:
                _STATS["distance_matrix_disk_writes"] += 1
    return winner


def shared_synthesizer(coupling: CouplingMap, max_qubits_exhaustive: int = 8):
    """The (cached) SWAP synthesizer for *coupling*, selected by size.

    Devices of at most *max_qubits_exhaustive* qubits share the exact
    :class:`~repro.arch.synthesis.TableSynthesizer` built on the cached
    permutation table; larger devices share a polynomial
    :class:`~repro.arch.synthesis.RoutedSynthesizer` built on the cached
    distance matrix.  Selections are counted in :func:`cache_stats`
    (``synthesizer_table_selected`` / ``synthesizer_routed_selected``) so
    the perf gates can pin that small devices stay on the exact path.
    """
    from repro.arch import synthesis  # local import: synthesis imports this module

    key = (coupling.canonical_key(), max_qubits_exhaustive)
    with _LOCK:
        cached = _SYNTHESIZERS.get(key)
        if cached is not None:
            _STATS["synthesizer_hits"] += 1
            _SYNTHESIZERS.move_to_end(key)
            return cached
    use_table = coupling.num_qubits <= max_qubits_exhaustive
    if use_table:
        table = shared_permutation_table(
            coupling, max_qubits_exhaustive=max_qubits_exhaustive
        )
        built = synthesis.TableSynthesizer(coupling, table=table)
    else:
        built = synthesis.RoutedSynthesizer(
            coupling, distances=shared_distance_matrix(coupling)
        )
    with _LOCK:
        _STATS["synthesizer_misses"] += 1
        if use_table:
            _STATS["synthesizer_table_selected"] += 1
        else:
            _STATS["synthesizer_routed_selected"] += 1
        winner = _SYNTHESIZERS.setdefault(key, built)
        _SYNTHESIZERS.move_to_end(key)
        while len(_SYNTHESIZERS) > MAX_ENTRIES:
            _SYNTHESIZERS.popitem(last=False)
    return winner


def shared_connected_subsets(coupling: CouplingMap, size: int) -> List[Tuple[int, ...]]:
    """Memoised :func:`~repro.arch.subsets.connected_subsets`.

    Returns a fresh list on every call (the cached tuples themselves are
    immutable), so callers may sort or slice the result freely.
    """
    key = (coupling.canonical_key(), size)
    with _LOCK:
        cached = _SUBSETS.get(key)
        if cached is not None:
            _STATS["connected_subsets_hits"] += 1
            _SUBSETS.move_to_end(key)
            return list(cached)
    subsets = tuple(connected_subsets(coupling, size))
    with _LOCK:
        _STATS["connected_subsets_misses"] += 1
        subsets = _SUBSETS.setdefault(key, subsets)
        _SUBSETS.move_to_end(key)
        while len(_SUBSETS) > MAX_ENTRIES:
            _SUBSETS.popitem(last=False)
        return list(subsets)


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters plus current cache sizes (a snapshot copy)."""
    with _LOCK:
        stats = dict(_STATS)
        stats["permutation_tables_cached"] = len(_TABLES)
        stats["connected_subset_lists_cached"] = len(_SUBSETS)
        stats["distance_matrices_cached"] = len(_DISTANCES)
        stats["synthesizers_cached"] = len(_SYNTHESIZERS)
    store = _disk_store()
    if store is not None:
        stats["permutation_tables_on_disk"] = len(store.entries())
        stats["disk_cache_bytes"] = store.size_bytes()
    distance_store = _distance_disk_store()
    if distance_store is not None:
        stats["distance_matrices_on_disk"] = len(distance_store.entries())
        stats["distance_cache_bytes"] = distance_store.size_bytes()
    return stats


def clear_caches() -> None:
    """Drop all cached artefacts and reset the counters (mainly for tests)."""
    with _LOCK:
        _TABLES.clear()
        _SUBSETS.clear()
        _DISTANCES.clear()
        _SYNTHESIZERS.clear()
        for key in _STATS:
            _STATS[key] = 0


__all__ = [
    "MAX_ENTRIES",
    "CACHE_DIR_ENV",
    "set_cache_dir",
    "reset_cache_dir",
    "get_cache_dir",
    "shared_permutation_table",
    "shared_distance_matrix",
    "shared_synthesizer",
    "shared_connected_subsets",
    "cache_stats",
    "clear_caches",
]
