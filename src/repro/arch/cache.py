"""Process-wide caches for per-architecture artefacts.

The exact engines repeatedly rebuild two expensive, read-only artefacts:

* the :class:`~repro.arch.permutations.PermutationTable` of a coupling map
  (exhaustive BFS over the permutation group — ``SATMapper`` used to rebuild
  it for *every* subset instance of every ``map`` call),
* the list of connected physical-qubit subsets of a given size
  (:func:`~repro.arch.subsets.connected_subsets`).

Both depend only on the structure of the coupling map, so this module
memoises them by :meth:`~repro.arch.coupling.CouplingMap.canonical_key`.
Distinct subsets of a device that induce the same re-indexed edge set share
one table, and every circuit of a batch reuses the artefacts of the first.

The caches are process-wide, thread-safe and LRU-bounded (:data:`MAX_ENTRIES`
per cache, far above what mapping a handful of devices needs), so a
long-running service cannot grow them without limit.  Worker *processes* of a
:class:`~repro.pipeline.pipeline.MappingPipeline` each populate their own
copy (forked children inherit the parent's warm cache on platforms whose
start method is ``fork``).

This module lives in :mod:`repro.arch` because the cached artefacts depend
only on the architecture layer; :mod:`repro.pipeline.cache` re-exports it as
the service-facing entry point.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.diskcache import PermutationDiskStore
from repro.arch.permutations import PermutationTable
from repro.arch.subsets import connected_subsets

_CacheKey = Tuple[int, Tuple[Tuple[int, int], ...]]

#: Per-cache LRU capacity.
MAX_ENTRIES = 128

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_LOCK = threading.Lock()
_TABLES: "OrderedDict[_CacheKey, PermutationTable]" = OrderedDict()
_SUBSETS: "OrderedDict[Tuple[_CacheKey, int], Tuple[Tuple[int, ...], ...]]" = OrderedDict()
_STATS = {
    "permutation_table_hits": 0,
    "permutation_table_misses": 0,
    "permutation_table_disk_hits": 0,
    "permutation_table_disk_writes": 0,
    "connected_subsets_hits": 0,
    "connected_subsets_misses": 0,
}

# Explicitly configured cache directory; ``False`` means "not configured,
# fall back to the environment variable" (``None`` disables the disk layer).
_CACHE_DIR: object = False


def set_cache_dir(path: Optional[str]) -> None:
    """Configure the on-disk warm-start layer.

    Args:
        path: Cache directory for persisted permutation tables, or ``None``
            to disable the disk layer (the in-memory caches keep working).
            Overrides the ``REPRO_CACHE_DIR`` environment variable.
    """
    global _CACHE_DIR
    with _LOCK:
        _CACHE_DIR = None if path is None else str(path)


def reset_cache_dir() -> None:
    """Forget any explicit setting; ``REPRO_CACHE_DIR`` applies again."""
    global _CACHE_DIR
    with _LOCK:
        _CACHE_DIR = False


def get_cache_dir() -> Optional[str]:
    """The active cache directory (explicit setting, else ``REPRO_CACHE_DIR``)."""
    with _LOCK:
        configured = _CACHE_DIR
    if configured is not False:
        return configured  # type: ignore[return-value]
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    return env or None


def _disk_store() -> Optional[PermutationDiskStore]:
    cache_dir = get_cache_dir()
    if cache_dir is None:
        return None
    return PermutationDiskStore(cache_dir)


def shared_permutation_table(
    coupling: CouplingMap, max_qubits_exhaustive: int = 8
) -> PermutationTable:
    """Return the (cached) :class:`PermutationTable` of *coupling*.

    The returned table is shared between callers and must be treated as
    read-only (it is, in normal use: :class:`PermutationTable` exposes no
    mutating API).

    Args:
        coupling: The architecture.
        max_qubits_exhaustive: Same guard as the :class:`PermutationTable`
            constructor; checked before any cache lookup so that a permissive
            earlier call cannot mask a stricter later one.
    """
    if coupling.num_qubits > max_qubits_exhaustive:
        raise ValueError(
            f"refusing to enumerate {coupling.num_qubits}! permutations; "
            "restrict the architecture to a subset of physical qubits first"
        )
    key = coupling.canonical_key()
    with _LOCK:
        table = _TABLES.get(key)
        if table is not None:
            _STATS["permutation_table_hits"] += 1
            _TABLES.move_to_end(key)
            return table
    # Build outside the lock: the BFS can take a while and concurrent misses
    # for *different* architectures should not serialise.  A racing build of
    # the same key is harmless; ``setdefault`` keeps exactly one winner.
    # A configured disk layer is consulted first so that a restarted process
    # warm-starts from the artefacts of its predecessors instead of
    # re-running the BFS.
    store = _disk_store()
    table = store.load(coupling) if store is not None else None
    disk_hit = table is not None
    if table is None:
        table = PermutationTable(coupling, max_qubits_exhaustive=max_qubits_exhaustive)
    with _LOCK:
        _STATS["permutation_table_misses"] += 1
        if disk_hit:
            _STATS["permutation_table_disk_hits"] += 1
        winner = _TABLES.setdefault(key, table)
        _TABLES.move_to_end(key)
        while len(_TABLES) > MAX_ENTRIES:
            _TABLES.popitem(last=False)
    if store is not None and not disk_hit and winner is table:
        try:
            store.save(table)
        except OSError:
            pass  # a read-only cache directory must not fail the mapping
        else:
            with _LOCK:
                _STATS["permutation_table_disk_writes"] += 1
    return winner


def shared_connected_subsets(coupling: CouplingMap, size: int) -> List[Tuple[int, ...]]:
    """Memoised :func:`~repro.arch.subsets.connected_subsets`.

    Returns a fresh list on every call (the cached tuples themselves are
    immutable), so callers may sort or slice the result freely.
    """
    key = (coupling.canonical_key(), size)
    with _LOCK:
        cached = _SUBSETS.get(key)
        if cached is not None:
            _STATS["connected_subsets_hits"] += 1
            _SUBSETS.move_to_end(key)
            return list(cached)
    subsets = tuple(connected_subsets(coupling, size))
    with _LOCK:
        _STATS["connected_subsets_misses"] += 1
        subsets = _SUBSETS.setdefault(key, subsets)
        _SUBSETS.move_to_end(key)
        while len(_SUBSETS) > MAX_ENTRIES:
            _SUBSETS.popitem(last=False)
        return list(subsets)


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters plus current cache sizes (a snapshot copy)."""
    with _LOCK:
        stats = dict(_STATS)
        stats["permutation_tables_cached"] = len(_TABLES)
        stats["connected_subset_lists_cached"] = len(_SUBSETS)
    store = _disk_store()
    if store is not None:
        stats["permutation_tables_on_disk"] = len(store.entries())
        stats["disk_cache_bytes"] = store.size_bytes()
    return stats


def clear_caches() -> None:
    """Drop all cached artefacts and reset the counters (mainly for tests)."""
    with _LOCK:
        _TABLES.clear()
        _SUBSETS.clear()
        for key in _STATS:
            _STATS[key] = 0


__all__ = [
    "MAX_ENTRIES",
    "CACHE_DIR_ENV",
    "set_cache_dir",
    "reset_cache_dir",
    "get_cache_dir",
    "shared_permutation_table",
    "shared_connected_subsets",
    "cache_stats",
    "clear_caches",
]
