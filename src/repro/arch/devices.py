"""Concrete device coupling maps.

The paper evaluates on IBM QX4 (Tenerife).  For completeness we also ship the
other QX-era devices and a few synthetic families (line, ring, grid, fully
connected) that are useful for testing and for the custom-architecture
example.

Qubit indices are zero-based: the paper's physical qubit ``p_i`` is index
``i - 1`` here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.arch.coupling import CouplingMap


def ibm_qx2() -> CouplingMap:
    """IBM QX2 (Yorktown) — 5 qubits, bow-tie connectivity."""
    edges = [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 2)]
    return CouplingMap(5, edges, name="ibm_qx2")


def ibm_qx4() -> CouplingMap:
    """IBM QX4 (Tenerife) — 5 qubits; the architecture evaluated in the paper.

    The paper's coupling map (Example 2) is
    ``CM = {(p2,p1), (p3,p1), (p3,p2), (p4,p3), (p4,p5), (p5,p3)}``; with
    zero-based indices this becomes
    ``{(1,0), (2,0), (2,1), (3,2), (3,4), (4,2)}``.
    """
    edges = [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)]
    return CouplingMap(5, edges, name="ibm_qx4")


def ibm_qx5() -> CouplingMap:
    """IBM QX5 (Rueschlikon) — 16 qubits arranged on a 2x8 ladder."""
    edges = [
        (1, 0), (1, 2), (2, 3), (3, 4), (3, 14), (5, 4), (6, 5), (6, 7),
        (6, 11), (7, 10), (8, 7), (9, 8), (9, 10), (11, 10), (12, 5),
        (12, 11), (12, 13), (13, 4), (13, 14), (15, 0), (15, 2), (15, 14),
    ]
    return CouplingMap(16, edges, name="ibm_qx5")


def ibm_tokyo() -> CouplingMap:
    """IBM Q20 Tokyo — 20 qubits on a 4x5 grid with diagonal couplings.

    Tokyo's couplings are bidirectional; both directions are included.
    """
    undirected = [
        (0, 1), (1, 2), (2, 3), (3, 4),
        (5, 6), (6, 7), (7, 8), (8, 9),
        (10, 11), (11, 12), (12, 13), (13, 14),
        (15, 16), (16, 17), (17, 18), (18, 19),
        (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
        (5, 10), (6, 11), (7, 12), (8, 13), (9, 14),
        (10, 15), (11, 16), (12, 17), (13, 18), (14, 19),
        (1, 7), (2, 6), (3, 9), (4, 8),
        (5, 11), (6, 10), (7, 13), (8, 12),
        (11, 17), (12, 16), (13, 19), (14, 18),
    ]
    edges: List[Tuple[int, int]] = []
    for a, b in undirected:
        edges.append((a, b))
        edges.append((b, a))
    return CouplingMap(20, edges, name="ibm_tokyo")


def sweep_grid8() -> CouplingMap:
    """An 8-qubit 2x4 grid with mixed CNOT directions (benchmark device).

    The directions are deliberately irregular so that the connected
    3-qubit subsets fall into *many* distinct families (several directed
    orientation classes over the same undirected path shape) — the
    workload that exercises the sweep-scale machinery of
    :class:`~repro.exact.sat_mapper.SATMapper` (family ordering,
    lower-bound pruning, cross-family clause sharing).  Small enough
    (``8! `` permutations) for exact SWAP reconstruction.
    """
    edges = [
        (0, 1), (2, 1), (2, 3),
        (4, 0), (1, 5), (6, 2), (3, 7),
        (4, 5), (6, 5), (6, 7),
    ]
    return CouplingMap(8, edges, name="sweep_grid8")


def linear_architecture(num_qubits: int, bidirectional: bool = False) -> CouplingMap:
    """A 1-D chain ``0 - 1 - ... - (n-1)`` with CNOTs directed towards higher indices.

    Args:
        num_qubits: Number of physical qubits.
        bidirectional: When True, both CNOT directions are natively allowed.
    """
    edges: List[Tuple[int, int]] = []
    for i in range(num_qubits - 1):
        edges.append((i, i + 1))
        if bidirectional:
            edges.append((i + 1, i))
    return CouplingMap(num_qubits, edges, name=f"linear_{num_qubits}")


def ring_architecture(num_qubits: int, bidirectional: bool = False) -> CouplingMap:
    """A ring of *num_qubits* qubits."""
    if num_qubits < 3:
        raise ValueError("a ring needs at least three qubits")
    edges: List[Tuple[int, int]] = []
    for i in range(num_qubits):
        j = (i + 1) % num_qubits
        edges.append((i, j))
        if bidirectional:
            edges.append((j, i))
    return CouplingMap(num_qubits, edges, name=f"ring_{num_qubits}")


def grid_architecture(rows: int, columns: int, bidirectional: bool = True) -> CouplingMap:
    """A ``rows x columns`` nearest-neighbour grid."""
    if rows <= 0 or columns <= 0:
        raise ValueError("grid dimensions must be positive")
    num_qubits = rows * columns
    edges: List[Tuple[int, int]] = []

    def index(r: int, c: int) -> int:
        return r * columns + c

    for r in range(rows):
        for c in range(columns):
            here = index(r, c)
            if c + 1 < columns:
                edges.append((here, index(r, c + 1)))
                if bidirectional:
                    edges.append((index(r, c + 1), here))
            if r + 1 < rows:
                edges.append((here, index(r + 1, c)))
                if bidirectional:
                    edges.append((index(r + 1, c), here))
    return CouplingMap(num_qubits, edges, name=f"grid_{rows}x{columns}")


def fully_connected_architecture(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (both directions) — no mapping overhead needed."""
    edges = [
        (a, b)
        for a in range(num_qubits)
        for b in range(num_qubits)
        if a != b
    ]
    return CouplingMap(num_qubits, edges, name=f"full_{num_qubits}")


_REGISTRY: Dict[str, Callable[[], CouplingMap]] = {
    "ibm_qx2": ibm_qx2,
    "qx2": ibm_qx2,
    "ibm_qx4": ibm_qx4,
    "qx4": ibm_qx4,
    "tenerife": ibm_qx4,
    "ibm_qx5": ibm_qx5,
    "qx5": ibm_qx5,
    "rueschlikon": ibm_qx5,
    "ibm_tokyo": ibm_tokyo,
    "tokyo": ibm_tokyo,
    "sweep_grid8": sweep_grid8,
    "grid8": sweep_grid8,
}


def available_architectures() -> List[str]:
    """Names accepted by :func:`get_architecture` (canonical names only)."""
    return sorted({"ibm_qx2", "ibm_qx4", "ibm_qx5", "ibm_tokyo", "sweep_grid8"})


def get_architecture(name: str) -> CouplingMap:
    """Look up a named architecture (case-insensitive).

    Raises:
        KeyError: If the name is not registered.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown architecture {name!r}; available: {available_architectures()}"
        )
    return _REGISTRY[key]()


__all__ = [
    "ibm_qx2",
    "ibm_qx4",
    "ibm_qx5",
    "ibm_tokyo",
    "sweep_grid8",
    "linear_architecture",
    "ring_architecture",
    "grid_architecture",
    "fully_connected_architecture",
    "available_architectures",
    "get_architecture",
]
