"""Enumeration of connected subsets of physical qubits.

Section 4.1 of the paper restricts the mapping to a subset of ``n`` of the
``m`` physical qubits.  Only *connected* subsets need to be considered: a
subset whose induced connectivity subgraph is disconnected can never host a
valid mapping of a connected interaction pattern (the paper's Example 9
prunes such subsets in O(n) time).
"""

from __future__ import annotations

import itertools
from typing import List, Set, Tuple

import networkx as nx

from repro.arch.coupling import CouplingMap


def all_subsets(coupling: CouplingMap, size: int) -> List[Tuple[int, ...]]:
    """All size-*size* subsets of physical qubits (connected or not).

    Raises:
        ValueError: If *size* is not between 1 and the device size.
    """
    if not 1 <= size <= coupling.num_qubits:
        raise ValueError(
            f"subset size {size} out of range for a {coupling.num_qubits}-qubit device"
        )
    return [
        tuple(combo)
        for combo in itertools.combinations(range(coupling.num_qubits), size)
    ]


def connected_subsets(coupling: CouplingMap, size: int) -> List[Tuple[int, ...]]:
    """All connected subsets of exactly *size* physical qubits, sorted.

    The subsets are found by filtering all :math:`\\binom{m}{n}` combinations
    by connectivity of the induced undirected subgraph.  For the devices this
    library targets (tens of qubits, subsets of at most a handful of qubits)
    this exhaustive filter is more than fast enough and obviously correct.
    Connectivity is checked with a plain set-based traversal instead of
    building a networkx subgraph per combination; repeated enumerations for
    the same architecture are additionally memoised by
    :func:`repro.pipeline.cache.shared_connected_subsets`.

    Args:
        coupling: The device coupling map.
        size: Number of physical qubits per subset (the circuit's ``n``).

    Returns:
        Sorted list of sorted tuples of physical qubit indices whose induced
        undirected subgraph is connected.
    """
    adjacency = {
        qubit: set(coupling.neighbours(qubit))
        for qubit in range(coupling.num_qubits)
    }
    result = []
    for subset in all_subsets(coupling, size):
        members = set(subset)
        seen = {subset[0]}
        stack = [subset[0]]
        while stack:
            for neighbour in adjacency[stack.pop()] & members:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        if len(seen) == size:
            result.append(subset)
    return result


def subsets_containing_cut_vertices(coupling: CouplingMap, size: int) -> List[Tuple[int, ...]]:
    """Connected subsets filtered by the paper's cut-vertex observation.

    Example 9 of the paper observes that on QX4 every connected 4-qubit
    subset must contain ``p3`` (the articulation point).  This helper returns
    the connected subsets of *size* qubits; it is equivalent to
    :func:`connected_subsets` but makes the pruning argument explicit and
    testable: every returned subset contains all articulation points whose
    removal would split the device into components smaller than *size*.
    """
    graph = coupling.to_undirected_graph()
    required: Set[int] = set()
    for vertex in nx.articulation_points(graph):
        pruned = graph.copy()
        pruned.remove_node(vertex)
        largest = max((len(c) for c in nx.connected_components(pruned)), default=0)
        if largest < size:
            required.add(vertex)
    subsets = connected_subsets(coupling, size)
    return [subset for subset in subsets if required <= set(subset)]


__all__ = ["connected_subsets", "all_subsets", "subsets_containing_cut_vertices"]
