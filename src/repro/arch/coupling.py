"""Coupling maps of quantum architectures.

A coupling map (Definition 2 of the paper) is a set of *directed* pairs
``(control, target)`` of physical qubits on which a CNOT may be applied
natively.  A CNOT on a coupled pair in the *wrong* direction can be fixed by
surrounding it with four Hadamard gates (cost 4); a CNOT on an uncoupled pair
requires SWAP insertion (cost 7 per SWAP).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx


class CouplingError(ValueError):
    """Raised on invalid coupling-map construction or queries."""


class CouplingMap:
    """A directed coupling map over ``num_qubits`` physical qubits.

    Args:
        num_qubits: Number of physical qubits ``m`` of the device.
        edges: Iterable of directed pairs ``(control, target)``.
        name: Human-readable architecture name.

    Example:
        >>> qx4 = CouplingMap(5, [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)], "qx4")
        >>> qx4.allows_cnot(1, 0)
        True
        >>> qx4.allows_cnot(0, 1)
        False
        >>> qx4.connected(0, 1)
        True
    """

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]],
                 name: str = "custom"):
        if num_qubits <= 0:
            raise CouplingError("a coupling map needs at least one physical qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._edges: Set[Tuple[int, int]] = set()
        for control, target in edges:
            self.add_edge(control, target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, control: int, target: int) -> None:
        """Add the directed pair ``(control, target)`` to the map."""
        if control == target:
            raise CouplingError("a qubit cannot be coupled to itself")
        for qubit in (control, target):
            if not 0 <= qubit < self.num_qubits:
                raise CouplingError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit device"
                )
        self._edges.add((control, target))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> FrozenSet[Tuple[int, int]]:
        """The directed edges of the coupling map."""
        return frozenset(self._edges)

    @property
    def undirected_edges(self) -> FrozenSet[Tuple[int, int]]:
        """The undirected edges (each as a sorted pair)."""
        return frozenset(tuple(sorted(edge)) for edge in self._edges)

    def allows_cnot(self, control: int, target: int) -> bool:
        """True when a CNOT with this control/target is natively allowed."""
        return (control, target) in self._edges

    def connected(self, qubit_a: int, qubit_b: int) -> bool:
        """True when the two qubits are coupled in either direction."""
        return (qubit_a, qubit_b) in self._edges or (qubit_b, qubit_a) in self._edges

    def neighbours(self, qubit: int) -> List[int]:
        """All qubits coupled to *qubit* (in either direction), sorted."""
        result = set()
        for control, target in self._edges:
            if control == qubit:
                result.add(target)
            elif target == qubit:
                result.add(control)
        return sorted(result)

    def degree(self, qubit: int) -> int:
        """Number of distinct neighbours of *qubit*."""
        return len(self.neighbours(qubit))

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def to_directed_graph(self) -> nx.DiGraph:
        """Return the coupling map as a directed networkx graph."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self._edges)
        return graph

    def to_undirected_graph(self) -> nx.Graph:
        """Return the connectivity graph ignoring edge directions."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self.undirected_edges)
        return graph

    def is_connected(self, qubits: Optional[Sequence[int]] = None) -> bool:
        """True when the (sub)graph induced by *qubits* is connected.

        Args:
            qubits: Physical qubits to restrict to; all qubits when omitted.
        """
        graph = self.to_undirected_graph()
        if qubits is not None:
            graph = graph.subgraph(qubits).copy()
        if graph.number_of_nodes() == 0:
            return False
        return nx.is_connected(graph)

    def distance_matrix(self) -> Dict[int, Dict[int, int]]:
        """All-pairs shortest-path distances on the undirected connectivity graph."""
        graph = self.to_undirected_graph()
        return {
            source: dict(lengths)
            for source, lengths in nx.all_pairs_shortest_path_length(graph)
        }

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Shortest undirected path length between two physical qubits."""
        graph = self.to_undirected_graph()
        try:
            return nx.shortest_path_length(graph, qubit_a, qubit_b)
        except nx.NetworkXNoPath as exc:
            raise CouplingError(
                f"qubits {qubit_a} and {qubit_b} are not connected"
            ) from exc

    def shortest_path(self, qubit_a: int, qubit_b: int) -> List[int]:
        """A shortest undirected path between two physical qubits."""
        graph = self.to_undirected_graph()
        try:
            return nx.shortest_path(graph, qubit_a, qubit_b)
        except nx.NetworkXNoPath as exc:
            raise CouplingError(
                f"qubits {qubit_a} and {qubit_b} are not connected"
            ) from exc

    def subgraph(self, qubits: Sequence[int], name: Optional[str] = None) -> "CouplingMap":
        """Return a coupling map restricted to *qubits*, re-indexed from zero.

        The i-th entry of *qubits* becomes physical qubit ``i`` of the new map.
        """
        index = {qubit: position for position, qubit in enumerate(qubits)}
        edges = [
            (index[control], index[target])
            for control, target in self._edges
            if control in index and target in index
        ]
        return CouplingMap(
            len(qubits), edges, name or f"{self.name}[{','.join(map(str, qubits))}]"
        )

    def triangles(self) -> List[Tuple[int, int, int]]:
        """All triangles (3-cliques) of the undirected connectivity graph.

        The *qubit triangle* strategy (Section 4.2) exploits the fact that a
        block of gates acting on at most three qubits can be mapped to such a
        triangle without further permutations.
        """
        graph = self.to_undirected_graph()
        found = set()
        for a, b in graph.edges:
            for c in sorted(set(graph[a]) & set(graph[b])):
                found.add(tuple(sorted((a, b, c))))
        return sorted(found)

    def canonical_key(self) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
        """Hashable key identifying the map by qubit count and edge set.

        The human-readable :attr:`name` is deliberately excluded so that two
        structurally identical maps (for example the same subset of the same
        device extracted twice) share one key.  Used by
        :mod:`repro.pipeline.cache` to memoise per-architecture artefacts.
        """
        return (self.num_qubits, tuple(sorted(self._edges)))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CouplingMap):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self.num_qubits, frozenset(self._edges)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CouplingMap(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"edges={sorted(self._edges)})"
        )


__all__ = ["CouplingMap", "CouplingError"]
