"""Architectures: coupling maps, device descriptions and permutation utilities."""

from repro.arch.coupling import CouplingMap
from repro.arch.devices import (
    ibm_qx2,
    ibm_qx4,
    ibm_qx5,
    ibm_tokyo,
    linear_architecture,
    ring_architecture,
    grid_architecture,
    fully_connected_architecture,
    get_architecture,
    available_architectures,
)
from repro.arch.permutations import (
    PermutationTable,
    all_permutations,
    apply_permutation,
    compose_permutations,
    identity_permutation,
    invert_permutation,
    minimal_swap_sequences,
)
from repro.arch.subsets import connected_subsets, subsets_containing_cut_vertices

__all__ = [
    "CouplingMap",
    "ibm_qx2",
    "ibm_qx4",
    "ibm_qx5",
    "ibm_tokyo",
    "linear_architecture",
    "ring_architecture",
    "grid_architecture",
    "fully_connected_architecture",
    "get_architecture",
    "available_architectures",
    "PermutationTable",
    "all_permutations",
    "apply_permutation",
    "compose_permutations",
    "identity_permutation",
    "invert_permutation",
    "minimal_swap_sequences",
    "connected_subsets",
    "subsets_containing_cut_vertices",
]
