"""On-disk persistence for per-architecture artefacts.

The process-wide caches of :mod:`repro.arch.cache` die with the process; for
a service that restarts (deploys, crashes, autoscaling) every worker would
re-run the exhaustive permutation-group BFS for every architecture it sees.
This module adds the durable layer underneath: a directory of JSON files,
one per canonical coupling-map key, holding the full
:class:`~repro.arch.permutations.PermutationTable` swap-sequence table.

Layout and concurrency
----------------------
Each artefact lives in ``<cache_dir>/permtables/<sha256-of-key>.json``.
Writers serialise into a unique temporary file in the same directory and
``os.replace`` it into place, so concurrent writers (threads *or* processes)
can never interleave partial content — the last complete write wins, and all
complete writes of the same key are identical by construction.  Corrupt or
stale files (wrong schema version, key mismatch from a hash collision) are
treated as misses, never as errors.

The cache directory is chosen per call site; :mod:`repro.arch.cache` resolves
it from an explicit ``set_cache_dir`` call or the ``REPRO_CACHE_DIR``
environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.arch.coupling import CouplingMap
from repro.arch.permutations import PermutationTable

#: Payload layout version; files with another version are ignored (miss).
DISK_SCHEMA_VERSION = 1

_CanonicalKey = Tuple[int, Tuple[Tuple[int, int], ...]]


def key_digest(key: _CanonicalKey) -> str:
    """Stable hex digest of a canonical coupling-map key (the file name)."""
    num_qubits, edges = key
    text = f"{num_qubits}|" + ";".join(f"{c},{t}" for c, t in edges)
    return hashlib.sha256(text.encode()).hexdigest()


class PermutationDiskStore:
    """Durable permutation-table store under one cache directory.

    Args:
        cache_dir: Root cache directory; the store uses the ``permtables/``
            subdirectory and creates it on first write.
    """

    def __init__(self, cache_dir):
        self.root = Path(cache_dir) / "permtables"

    def _path(self, key: _CanonicalKey) -> Path:
        return self.root / f"{key_digest(key)}.json"

    # ------------------------------------------------------------------
    def load(self, coupling: CouplingMap) -> Optional[PermutationTable]:
        """Warm-start a table for *coupling* from disk; ``None`` on any miss."""
        key = coupling.canonical_key()
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("schema_version") != DISK_SCHEMA_VERSION:
            return None
        if payload.get("num_qubits") != key[0]:
            return None
        if [list(edge) for edge in key[1]] != payload.get("edges"):
            return None
        sequences: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
        for perm_text, seq in payload["sequences"].items():
            perm = tuple(int(part) for part in perm_text.split(","))
            sequences[perm] = [tuple(edge) for edge in seq]
        return PermutationTable.from_sequences(coupling, sequences)

    def save(self, table: PermutationTable) -> Path:
        """Persist *table* atomically; returns the file path."""
        key = table.coupling.canonical_key()
        payload = {
            "schema_version": DISK_SCHEMA_VERSION,
            "num_qubits": key[0],
            "edges": [list(edge) for edge in key[1]],
            "sequences": {
                ",".join(str(q) for q in perm): [list(edge) for edge in seq]
                for perm, seq in table.sequences().items()
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def entries(self) -> List[Path]:
        """All artefact files currently on disk (empty when absent)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def size_bytes(self) -> int:
        """Total size of the stored artefacts in bytes.

        A file deleted between the directory listing and the ``stat`` (a
        concurrent ``clear``) counts as zero instead of raising.
        """
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every stored artefact; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class DistanceDiskStore:
    """Durable all-pairs distance-table store under one cache directory.

    The big-device synthesis path (:mod:`repro.arch.synthesis`) replaces the
    permutation-group BFS with all-pairs shortest-path distances; this store
    persists those tables in ``<cache_dir>/distances/<sha256-of-key>.json``
    with the same atomic-replace discipline as :class:`PermutationDiskStore`.

    Args:
        cache_dir: Root cache directory; the store uses the ``distances/``
            subdirectory and creates it on first write.
    """

    def __init__(self, cache_dir):
        self.root = Path(cache_dir) / "distances"

    def _path(self, key: _CanonicalKey) -> Path:
        return self.root / f"{key_digest(key)}.json"

    # ------------------------------------------------------------------
    def load(self, coupling: CouplingMap) -> Optional[Dict[int, Dict[int, int]]]:
        """Load the distance matrix for *coupling*; ``None`` on any miss."""
        key = coupling.canonical_key()
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("schema_version") != DISK_SCHEMA_VERSION:
            return None
        if payload.get("num_qubits") != key[0]:
            return None
        if [list(edge) for edge in key[1]] != payload.get("edges"):
            return None
        return {
            int(source): {int(dest): int(hops) for dest, hops in row.items()}
            for source, row in payload["distances"].items()
        }

    def save(self, coupling: CouplingMap, distances: Dict[int, Dict[int, int]]) -> Path:
        """Persist *distances* atomically; returns the file path."""
        key = coupling.canonical_key()
        payload = {
            "schema_version": DISK_SCHEMA_VERSION,
            "num_qubits": key[0],
            "edges": [list(edge) for edge in key[1]],
            "distances": {
                str(source): {str(dest): hops for dest, hops in row.items()}
                for source, row in distances.items()
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def entries(self) -> List[Path]:
        """All artefact files currently on disk (empty when absent)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def size_bytes(self) -> int:
        """Total size of the stored artefacts in bytes."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every stored artefact; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


__all__ = [
    "DISK_SCHEMA_VERSION",
    "PermutationDiskStore",
    "DistanceDiskStore",
    "key_digest",
]
