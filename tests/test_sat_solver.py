"""Unit tests for the CDCL solver (cross-checked against DPLL and brute force)."""

import itertools
import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver, SolverResult


def brute_force_satisfiable(clauses, num_vars):
    """Reference satisfiability check by enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        ok = True
        for clause in clauses:
            if not any(
                assignment[abs(lit)] if lit > 0 else not assignment[abs(lit)]
                for lit in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


def model_satisfies(clauses, model):
    return all(
        any(model[abs(lit)] if lit > 0 else not model[abs(lit)] for lit in clause)
        for clause in clauses
    )


class TestBasicCases:
    def test_single_unit(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert solver.solve() is SolverResult.SAT
        assert solver.model()[1] is True

    def test_trivially_unsat(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SolverResult.UNSAT

    def test_simple_implication_chain(self):
        solver = CDCLSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        assert solver.solve() is SolverResult.SAT
        model = solver.model()
        assert model[1] and model[2] and model[3]

    def test_pigeonhole_3_into_2_is_unsat(self):
        # Variables p_{i,j}: pigeon i in hole j; i in 0..2, j in 0..1.
        def var(i, j):
            return i * 2 + j + 1

        solver = CDCLSolver()
        for i in range(3):
            solver.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    solver.add_clause([-var(i1, j), -var(i2, j)])
        assert solver.solve() is SolverResult.UNSAT

    def test_tautological_clause_is_ignored(self):
        solver = CDCLSolver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        assert solver.solve() is SolverResult.SAT

    def test_zero_literal_rejected(self):
        solver = CDCLSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_value_accessor(self):
        solver = CDCLSolver()
        solver.add_clause([-1])
        solver.add_clause([2])
        assert solver.solve() is SolverResult.SAT
        assert solver.value(-1) is True
        assert solver.value(2) is True

    def test_conflict_limit_returns_unknown(self):
        # A hard random instance with a conflict limit of 1 should give up.
        rng = random.Random(7)
        solver = CDCLSolver()
        num_vars = 30
        for _ in range(130):
            clause = rng.sample(range(1, num_vars + 1), 3)
            solver.add_clause([lit if rng.random() < 0.5 else -lit for lit in clause])
        result = solver.solve(conflict_limit=1)
        assert result in (SolverResult.SAT, SolverResult.UNSAT, SolverResult.UNKNOWN)


class TestIncremental:
    def test_adding_clauses_between_solves(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve() is SolverResult.SAT
        solver.add_clause([-1])
        assert solver.solve() is SolverResult.SAT
        assert solver.model()[2] is True
        solver.add_clause([-2])
        assert solver.solve() is SolverResult.UNSAT

    def test_unsat_is_sticky(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SolverResult.UNSAT
        solver.add_clause([2])
        assert solver.solve() is SolverResult.UNSAT


class TestAgainstReferences:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_3sat_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 10)
        num_clauses = rng.randint(5, 40)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        solver = CDCLSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        expected = brute_force_satisfiable(clauses, num_vars)
        assert (result is SolverResult.SAT) == expected
        if result is SolverResult.SAT:
            assert model_satisfies(clauses, solver.model())

    @pytest.mark.parametrize("seed", range(15))
    def test_cdcl_agrees_with_dpll(self, seed):
        """Every available backend agrees with DPLL — plain, under
        assumptions, and after export/import — with identical counters.

        The differential part runs each backend through the same scripted
        scenario and requires the full statistics dicts to match: the
        compiled backend is only acceptable if it is bit-identical, not
        merely "also correct".  With only the pure backend built, the
        scenario still exercises assumptions and export/import against
        DPLL.
        """
        from repro.sat._backend import available_backends, backend_module

        rng = random.Random(1000 + seed)
        num_vars = rng.randint(5, 12)
        cnf = CNF()
        for _ in range(num_vars):
            cnf.new_var()
        for _ in range(rng.randint(10, 50)):
            variables = rng.sample(range(1, num_vars + 1), 3)
            cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
        assumptions = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 2)
        ]
        clause_literals = [list(c.literals) for c in cnf.clauses]

        # DPLL references: plain, and with the assumptions as unit clauses.
        dpll_plain = DPLLSolver(cnf).solve()
        assumed = CNF()
        for _ in range(num_vars):
            assumed.new_var()
        for literals in clause_literals:
            assumed.add_clause(literals)
        for literal in assumptions:
            assumed.add_clause([literal])
        dpll_assumed = DPLLSolver(assumed).solve()

        counters = {}
        for name in available_backends():
            solver_class = backend_module(name).CDCLSolver
            solver = solver_class(cnf)
            assert solver.solve() is dpll_plain
            if dpll_plain is SolverResult.SAT:
                assert model_satisfies(clause_literals, solver.model())
            assert solver.solve(assumptions=assumptions) is dpll_assumed
            if dpll_assumed is SolverResult.SAT:
                model = solver.model()
                assert model_satisfies(clause_literals, model)
                assert model_satisfies([[a] for a in assumptions], model)
            elif dpll_plain is SolverResult.SAT:
                # UNSAT only together with the assumptions: the failing
                # core is a (non-empty) subset of them.
                core = solver.last_core()
                assert core
                assert set(core) <= set(assumptions)
            # Assumptions are fully undone; the plain answer is unchanged.
            assert solver.solve() is dpll_plain
            # A second solver of the same backend fed the exported learned
            # clauses must agree everywhere too.
            receiver = solver_class(cnf)
            receiver.import_clauses(solver.export_learned())
            assert receiver.solve() is dpll_plain
            assert receiver.solve(assumptions=assumptions) is dpll_assumed
            counters[name] = (
                dict(solver.statistics), dict(receiver.statistics)
            )
        reference = counters.pop("pure")
        for name, stats in counters.items():
            assert stats == reference, (
                f"backend {name!r} diverged from 'pure': {stats} != {reference}"
            )

    def test_larger_satisfiable_instance(self):
        # A satisfiable structured instance: a chain of equivalences.
        solver = CDCLSolver()
        num_vars = 60
        for i in range(1, num_vars):
            solver.add_clause([-i, i + 1])
            solver.add_clause([i, -(i + 1)])
        solver.add_clause([1])
        assert solver.solve() is SolverResult.SAT
        model = solver.model()
        assert all(model[i] for i in range(1, num_vars + 1))
