"""Unit tests for the gate objects."""

import pytest

from repro.circuit.gates import (
    Barrier,
    CNOTGate,
    CZGate,
    Gate,
    GateError,
    HGate,
    Measure,
    RXGate,
    RZGate,
    SwapGate,
    TGate,
    UGate,
    XGate,
    single_qubit_gate,
)


class TestGateBasics:
    def test_gate_rejects_empty_name(self):
        with pytest.raises(GateError):
            Gate("", (0,))

    def test_gate_rejects_duplicate_qubits(self):
        with pytest.raises(GateError):
            Gate("cx", (1, 1))

    def test_gate_rejects_negative_qubits(self):
        with pytest.raises(GateError):
            Gate("x", (-1,))

    def test_num_qubits(self):
        assert Gate("foo", (0, 3, 5)).num_qubits == 3

    def test_gates_are_hashable_and_equal_by_value(self):
        assert CNOTGate(0, 1) == CNOTGate(0, 1)
        assert CNOTGate(0, 1) != CNOTGate(1, 0)
        assert len({CNOTGate(0, 1), CNOTGate(0, 1)}) == 1


class TestSingleQubitGates:
    def test_named_constructors(self):
        assert HGate(2).name == "h"
        assert HGate(2).qubit == 2
        assert XGate(0).is_single_qubit
        assert TGate(1).params == ()

    def test_rotation_gate_parameters(self):
        gate = RXGate(0.5, 1)
        assert gate.theta == pytest.approx(0.5)
        assert gate.qubit == 1
        assert RZGate(1.25, 0).params == (1.25,)

    def test_u_gate_parameters(self):
        gate = UGate(0.1, 0.2, 0.3, 2)
        assert gate.theta == pytest.approx(0.1)
        assert gate.phi == pytest.approx(0.2)
        assert gate.lam == pytest.approx(0.3)
        assert gate.name == "u3"

    def test_factory_by_name(self):
        assert single_qubit_gate("h", 0) == HGate(0)
        assert single_qubit_gate("rz", 1, (0.7,)).params == (0.7,)
        assert single_qubit_gate("u3", 0, (1, 2, 3)).name == "u3"

    def test_factory_u2_and_u1_normalise_to_u3(self):
        u2 = single_qubit_gate("u2", 0, (0.1, 0.2))
        assert u2.name == "u3"
        assert len(u2.params) == 3
        u1 = single_qubit_gate("u1", 0, (0.4,))
        assert u1.params[0] == 0.0

    def test_factory_rejects_unknown_and_bad_params(self):
        with pytest.raises(GateError):
            single_qubit_gate("nope", 0)
        with pytest.raises(GateError):
            single_qubit_gate("h", 0, (0.1,))
        with pytest.raises(GateError):
            single_qubit_gate("rz", 0)


class TestTwoQubitGates:
    def test_cnot_properties(self):
        gate = CNOTGate(2, 0)
        assert gate.control == 2
        assert gate.target == 0
        assert gate.is_cnot
        assert not gate.is_single_qubit

    def test_cnot_reversed(self):
        assert CNOTGate(0, 1).reversed() == CNOTGate(1, 0)

    def test_swap_and_cz(self):
        assert SwapGate(0, 1).name == "swap"
        assert CZGate(1, 2).name == "cz"
        assert not SwapGate(0, 1).is_cnot


class TestDirectives:
    def test_barrier(self):
        barrier = Barrier((0, 1, 2))
        assert barrier.is_directive
        assert barrier.qubits == (0, 1, 2)

    def test_measure(self):
        measure = Measure(1, 3)
        assert measure.is_directive
        assert measure.qubit == 1
        assert measure.clbit == 3


class TestRemap:
    def test_remap_with_dict(self):
        gate = CNOTGate(0, 1).remap({0: 3, 1: 4})
        assert isinstance(gate, CNOTGate)
        assert gate.control == 3
        assert gate.target == 4

    def test_remap_with_sequence(self):
        gate = HGate(1).remap([5, 6, 7])
        assert gate.qubit == 6
        assert gate.name == "h"

    def test_remap_preserves_params(self):
        gate = UGate(0.1, 0.2, 0.3, 0).remap({0: 2})
        assert gate.params == (0.1, 0.2, 0.3)
        assert gate.qubits == (2,)

    def test_remap_measure_keeps_clbit(self):
        measure = Measure(0, 5).remap({0: 4})
        assert measure.qubits == (4,)
        assert measure.clbit == 5
