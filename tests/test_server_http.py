"""End-to-end tests of one JobServer: HTTP lifecycle, WebSocket stream, drain.

Everything runs against a real listening socket on an ephemeral loopback
port — requests travel through the hand-rolled HTTP/1.1 and RFC 6455
WebSocket plumbing in :mod:`repro.server.wire`, not through test doubles.
"""

import asyncio
import json
import os
import time

import pytest

from repro.arch.devices import ibm_qx4
from repro.circuit.qasm.writer import to_qasm
from repro.benchlib.paper_example import paper_example_circuit
from repro.exact.dp_mapper import DPMapper
from repro.pipeline.registry import DEFAULT_REGISTRY
from repro.server import wire
from repro.server.app import JobServer
from repro.service.service import MappingService
from repro.service.store import ResultStore

EXECUTOR = os.environ.get("REPRO_TEST_EXECUTOR", "thread")

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[1],q[0];
cx q[2],q[3];
cx q[3],q[1];
"""


def run(coroutine):
    return asyncio.run(coroutine)


def _server(**kwargs):
    store = kwargs.pop("store", None)
    service = MappingService(
        ibm_qx4(),
        engine=kwargs.pop("engine", "dp"),
        workers=kwargs.pop("workers", 2),
        executor=EXECUTOR,
        store=store,
    )
    return JobServer(service, **kwargs)


async def _request(port, method, target, body=None):
    status, _headers, payload = await wire.http_request(
        "127.0.0.1", port, method, target, body=body
    )
    return status, json.loads(payload)


def _submit_body(qasm=QASM, name="http_test", engine="dp"):
    return json.dumps(
        {
            "type": "submit-request",
            "version": 1,
            "payload": {
                "qasm": qasm,
                "arch": "ibm_qx4",
                "engine": engine,
                "circuit_name": name,
            },
        }
    ).encode()


class _SlowMapper:
    """Registry-compatible mapper with a controllable delay."""

    delay = 0.4

    def __init__(self, coupling):
        self.coupling = coupling

    def map(self, circuit):
        time.sleep(type(self).delay)
        return DPMapper(self.coupling).map(circuit)


@pytest.fixture()
def slow_engine():
    _SlowMapper.delay = 0.4
    DEFAULT_REGISTRY.register(
        "slow_test_engine",
        lambda coupling, **options: _SlowMapper(coupling),
        overwrite=True,
    )
    return "slow_test_engine"


class TestJobLifecycle:
    def test_submit_result_status_roundtrip(self):
        async def scenario():
            async with _server() as server:
                port = server.port
                status, envelope = await _request(
                    port, "POST", "/v1/jobs", _submit_body()
                )
                assert status == 202
                assert envelope["type"] == "job-status"
                job_id = envelope["payload"]["job_id"]

                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/result?wait=60"
                )
                assert status == 200
                assert envelope["type"] == "result-payload"
                assert envelope["payload"]["result"]["optimal"] is True

                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}"
                )
                assert status == 200
                assert envelope["payload"]["status"] == "done"
                assert envelope["payload"]["added_cost"] is not None

        run(scenario())

    def test_paper_example_is_proven_optimal_over_http(self):
        from repro.benchlib.paper_example import PAPER_EXAMPLE_MINIMAL_COST

        async def scenario():
            async with _server() as server:
                body = _submit_body(
                    qasm=to_qasm(paper_example_circuit()),
                    name="paper_example",
                )
                _status, envelope = await _request(
                    server.port, "POST", "/v1/jobs", body
                )
                job_id = envelope["payload"]["job_id"]
                status, envelope = await _request(
                    server.port, "GET", f"/v1/jobs/{job_id}/result?wait=120"
                )
                assert status == 200
                result = envelope["payload"]["result"]
                assert result["optimal"] is True
                assert result["objective"] == PAPER_EXAMPLE_MINIMAL_COST

        run(scenario())

    def test_resubmission_is_served_from_the_store(self):
        async def scenario():
            async with _server() as server:
                port = server.port
                for expect_hit in (False, True):
                    _status, envelope = await _request(
                        port, "POST", "/v1/jobs", _submit_body()
                    )
                    job_id = envelope["payload"]["job_id"]
                    _status, envelope = await _request(
                        port, "GET", f"/v1/jobs/{job_id}/result?wait=60"
                    )
                    hit = envelope["payload"]["provenance"].get(
                        "cache_hit", False
                    )
                    assert hit is expect_hit

        run(scenario())

    def test_result_before_completion_returns_202_status(self, slow_engine):
        async def scenario():
            async with _server(engine=slow_engine) as server:
                port = server.port
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs", _submit_body(engine=slow_engine)
                )
                job_id = envelope["payload"]["job_id"]
                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/result"
                )
                assert status == 202
                assert envelope["type"] == "job-status"
                assert envelope["payload"]["status"] in ("queued", "running")
                # Let the job finish so teardown drains cleanly.
                await _request(port, "GET", f"/v1/jobs/{job_id}/result?wait=60")

        run(scenario())


class TestObservability:
    def test_stats_and_healthz(self):
        async def scenario():
            async with _server() as server:
                port = server.port
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs", _submit_body()
                )
                job_id = envelope["payload"]["job_id"]
                await _request(port, "GET", f"/v1/jobs/{job_id}/result?wait=60")

                status, envelope = await _request(port, "GET", "/v1/stats")
                assert status == 200
                stats = envelope["payload"]["stats"]
                assert stats["queue_depth"] == 0
                assert stats["in_flight"] == 0
                assert stats["per_engine"]["dp"]["submitted"] == 1
                assert stats["per_engine"]["dp"]["solved"] == 1
                assert stats["latency"]["count"] == 1
                assert stats["latency"]["p50_seconds"] >= 0.0
                assert stats["latency"]["p99_seconds"] >= stats["latency"][
                    "p50_seconds"
                ]
                assert stats["server"]["worker_id"] == "w0"

                status, envelope = await _request(port, "GET", "/v1/healthz")
                assert status == 200
                payload = envelope["payload"]
                assert payload["ok"] is True
                assert payload["role"] == "worker"
                assert payload["pid"] == os.getpid()

        run(scenario())

    def test_prune_endpoint_flushes_memory(self, tmp_path):
        async def scenario():
            store = ResultStore.at(str(tmp_path))
            async with _server(store=store) as server:
                port = server.port
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs", _submit_body()
                )
                job_id = envelope["payload"]["job_id"]
                await _request(port, "GET", f"/v1/jobs/{job_id}/result?wait=60")

                status, envelope = await _request(
                    port, "POST", "/v1/cache/prune", b""
                )
                assert status == 200
                assert envelope["type"] == "prune-report"
                assert envelope["payload"]["memory_dropped"] == 1
                # Disk rows survive a memory-only flush.
                assert store.stats()["disk_entries"] == 1

        run(scenario())


class TestErrorSurface:
    def test_error_responses(self):
        async def scenario():
            async with _server() as server:
                port = server.port
                cases = [
                    ("GET", "/v1/jobs/nope", None, 404, "job-not-found"),
                    ("GET", "/v1/bogus", None, 404, "not-found"),
                    ("DELETE", "/v1/jobs", None, 405, "method-not-allowed"),
                    ("POST", "/v1/jobs", b"{not json", 400, "protocol-error"),
                    ("GET", "/v1/stream", None, 400, "protocol-error"),
                ]
                for method, target, body, want_status, want_code in cases:
                    status, envelope = await _request(
                        port, method, target, body
                    )
                    assert status == want_status, (method, target)
                    assert envelope["type"] == "error"
                    assert envelope["payload"]["error_code"] == want_code

        run(scenario())

    def test_unparseable_qasm_is_a_protocol_error(self):
        async def scenario():
            async with _server() as server:
                status, envelope = await _request(
                    server.port, "POST", "/v1/jobs",
                    _submit_body(qasm="definitely not qasm"),
                )
                assert status == 400
                assert envelope["payload"]["error_code"] == "protocol-error"
                assert "parse" in envelope["payload"]["message"]

        run(scenario())

    def test_wrong_message_type_rejected(self):
        async def scenario():
            async with _server() as server:
                body = json.dumps(
                    {"type": "prune-request", "version": 1, "payload": {}}
                ).encode()
                status, envelope = await _request(
                    server.port, "POST", "/v1/jobs", body
                )
                assert status == 400
                assert "submit-request" in envelope["payload"]["message"]

        run(scenario())

    def test_version_mismatch_surfaces_supported_versions(self):
        async def scenario():
            async with _server() as server:
                body = json.dumps(
                    {
                        "type": "submit-request",
                        "version": 99,
                        "payload": {"qasm": QASM},
                    }
                ).encode()
                status, envelope = await _request(
                    server.port, "POST", "/v1/jobs", body
                )
                assert status == 400
                details = envelope["payload"]["details"]
                assert details["supported_versions"] == [1]

        run(scenario())


class TestStream:
    def test_stream_sees_job_transitions(self):
        async def scenario():
            async with _server() as server:
                port = server.port
                socket = await wire.open_websocket(
                    "127.0.0.1", port, "/v1/stream"
                )
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs", _submit_body()
                )
                job_id = envelope["payload"]["job_id"]
                await _request(port, "GET", f"/v1/jobs/{job_id}/result?wait=60")

                seen = []
                while len(seen) < 3:
                    message = await asyncio.wait_for(
                        socket.receive(), timeout=10
                    )
                    assert message is not None
                    event = json.loads(message)
                    assert event["type"] == "stream-event"
                    assert event["payload"]["worker"] == "w0"
                    if event["payload"]["job_id"] == job_id:
                        seen.append(event["payload"]["status"])
                await socket.close()
                assert seen == ["queued", "running", "done"]

        run(scenario())


class TestDrain:
    def test_server_drain_finishes_in_flight_and_fails_queued(
        self, slow_engine
    ):
        """The PR's robustness contract: no job is lost across a drain.

        With a single service worker and three slow jobs, stopping mid-run
        must (a) finish whatever was dispatched, (b) fail what was still
        queued with a structured service-unavailable error, and (c) reject
        new submissions while draining.
        """

        async def scenario():
            server = _server(engine=slow_engine, workers=1)
            await server.start()
            port = server.port
            job_ids = []
            bodies = [
                _submit_body(
                    qasm=QASM.replace("cx q[3],q[1];", f"cx q[{i}],q[3];"),
                    name=f"drain_{i}", engine=slow_engine,
                )
                for i in (0, 1, 2)
            ]
            for body in bodies:
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs", body
                )
                job_ids.append(envelope["payload"]["job_id"])
            # Let the first batch reach the solver.
            await asyncio.sleep(0.1)
            service = server.service
            await server.stop(drain=True)

            statuses = [service.status(job_id) for job_id in job_ids]
            terminal = {"done", "failed"}
            assert all(s["status"] in terminal for s in statuses)
            failed = [s for s in statuses if s["status"] == "failed"]
            for snapshot in failed:
                assert snapshot["error"]["code"] == "service-unavailable"
            done = [s for s in statuses if s["status"] == "done"]
            assert done, "at least the in-flight batch must finish"
            return statuses

        run(scenario())

    def test_draining_server_rejects_new_submissions(self, slow_engine):
        async def scenario():
            async with _server(engine=slow_engine, workers=1) as server:
                _status, envelope = await _request(
                    server.port, "POST", "/v1/jobs",
                    _submit_body(engine=slow_engine),
                )
                job_id = envelope["payload"]["job_id"]
                service = server.service
                await asyncio.sleep(0.05)
                stop_task = asyncio.ensure_future(service.stop(drain=True))
                await asyncio.sleep(0.05)
                from repro.service.errors import ServiceUnavailable

                with pytest.raises(ServiceUnavailable):
                    await service.submit(paper_example_circuit())
                await stop_task
                assert service.status(job_id)["status"] == "done"

        run(scenario())
