"""Unit tests for the symbolic mapping formulation (Section 3.2)."""

import pytest

from repro.arch.devices import ibm_qx4
from repro.arch.permutations import PermutationTable
from repro.exact.encoding import EncodingError, build_encoding
from repro.sat.optimize import OptimizingSolver
from repro.sat.solver import CDCLSolver, SolverResult


def small_subgraph():
    """The triangle p1, p2, p3 of QX4 (0-based 0, 1, 2), re-indexed."""
    return ibm_qx4().subgraph((0, 1, 2))


class TestBuildEncoding:
    def test_variable_counts(self):
        coupling = small_subgraph()
        encoding = build_encoding([(0, 1), (1, 2)], 3, coupling)
        # x variables: 2 gates * 3 physical * 3 logical = 18 of the total.
        assert len(encoding.x_vars) == 2
        assert len(encoding.x_vars[0]) == 9
        # One z per gate, y's only for spot 1 (the initial mapping is free).
        assert set(encoding.z_vars) == {0, 1}
        assert set(encoding.y_vars) == {1}
        assert len(encoding.y_vars[1]) == 6  # 3! permutations of the triangle

    def test_errors(self):
        coupling = small_subgraph()
        with pytest.raises(EncodingError):
            build_encoding([], 3, coupling)
        with pytest.raises(EncodingError):
            build_encoding([(0, 1)], 5, coupling)
        with pytest.raises(EncodingError):
            build_encoding([(0, 7)], 3, coupling)
        with pytest.raises(EncodingError):
            build_encoding([(0, 1)], 3, coupling, permutation_spots=[5])

    def test_satisfiable_and_schedule_extraction(self):
        coupling = small_subgraph()
        encoding = build_encoding([(0, 1), (1, 2)], 3, coupling)
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve() is SolverResult.SAT
        mappings = encoding.extract_schedule(solver.model())
        assert len(mappings) == 2
        for mapping in mappings:
            assert sorted(mapping) == [0, 1, 2]

    def test_every_model_respects_coupling(self):
        coupling = small_subgraph()
        encoding = build_encoding([(0, 1)], 2, coupling)
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve() is SolverResult.SAT
        mapping = encoding.extract_schedule(solver.model())[0]
        control, target = mapping[0], mapping[1]
        assert coupling.connected(control, target)

    def test_objective_value_reflects_z_variables(self):
        coupling = small_subgraph()
        encoding = build_encoding([(0, 1)], 2, coupling)
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        # Force a reversed placement: logical control on physical 0 and target
        # on physical 1; only (1, 0) and (2, 0), (2, 1) are native on the
        # triangle, so this placement needs the 4-H direction fix.
        solver.add_clause([encoding.x_vars[0][(0, 0)]])
        solver.add_clause([encoding.x_vars[0][(1, 1)]])
        assert solver.solve() is SolverResult.SAT
        model = solver.model()
        assert model[encoding.z_vars[0]] is True
        assert encoding.objective_value(model) == 4

    def test_non_spot_gates_keep_mapping_fixed(self):
        coupling = small_subgraph()
        encoding = build_encoding(
            [(0, 1), (1, 2), (0, 2)], 3, coupling, permutation_spots=[0]
        )
        assert encoding.y_vars == {}
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve() is SolverResult.SAT
        mappings = encoding.extract_schedule(solver.model())
        assert mappings[0] == mappings[1] == mappings[2]

    def test_partial_mapping_uses_footnote5_encoding(self):
        # n < m: exactly-one y per spot with implication semantics.
        qx4 = ibm_qx4()
        table = PermutationTable(qx4)
        encoding = build_encoding([(0, 1), (1, 0)], 2, qx4, permutation_table=table)
        assert len(encoding.y_vars[1]) == 120
        solver = CDCLSolver()
        solver.add_cnf(encoding.cnf)
        assert solver.solve() is SolverResult.SAT
        model = solver.model()
        selected = [
            perm for perm, var in encoding.y_vars[1].items() if model[var]
        ]
        assert len(selected) == 1

    def test_optimizer_finds_zero_cost_for_native_pair(self):
        coupling = small_subgraph()
        encoding = build_encoding([(1, 0)], 2, coupling)
        result = OptimizingSolver(encoding.cnf, encoding.objective).minimize()
        assert result.is_optimal
        assert result.objective == 0

    def test_spot_list_always_contains_zero(self):
        coupling = small_subgraph()
        encoding = build_encoding(
            [(0, 1), (1, 2)], 3, coupling, permutation_spots=[1]
        )
        assert encoding.permutation_spots == [0, 1]
