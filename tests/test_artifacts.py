"""Tests for the fleet-wide solve-artifact cache (cross-job warm starts).

Covers the solve-artifact tier of :class:`repro.service.store.ResultStore`
and its consumers:

* store semantics — merge (clause union, per-orientation bound maximum,
  cheapest schedule), TTL expiry, prune sweep, corrupt-row handling,
  memory/disk tier interplay, pickling of the :class:`ArtifactCache`
  handle,
* the *correctness invariant* — every clause persisted under a skeleton
  key is implied by a fresh same-key target instance (refutation via
  :func:`repro.exact.sweep.clause_is_implied`), and a warm sweep under
  ``REPRO_CHECK_IMPORTS=1`` runs clean,
* degradation — empty store, corrupt rows, shape-mismatched rows and
  wrong skeleton keys all fall back to the cold behaviour (same proven
  minima) with truthful provenance notes,
* the :class:`ClauseProvider` / :meth:`BoundProviderChain.resolve_artifacts`
  plumbing, parallel-vs-sequential agreement, and the service-level hit
  counters stamped into job provenance and ``MappingService.stats()``.
"""

import asyncio
import json
import pickle
import sqlite3
import time

from repro.arch.coupling import CouplingMap
from repro.arch.devices import ibm_qx4
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.exact.encoding import build_encoding, clear_skeleton_cache
from repro.exact.sat_mapper import SATMapper
from repro.exact.sweep import clause_is_implied, template_clause_remap
from repro.pipeline.bounds import BoundProviderChain, ClauseProvider
from repro.pipeline.pipeline import MappingPipeline
from repro.service.service import MappingService
from repro.service.store import (
    ARTIFACT_PAYLOAD_VERSION,
    ArtifactCache,
    MAX_ARTIFACT_CLAUSES,
    ResultStore,
)

PAPER_MINIMAL_COST = 4


def _payload(**overrides):
    """A small, valid artifact payload (vars 1..6: x block 4, spot block 2)."""
    payload = {
        "version": ARTIFACT_PAYLOAD_VERSION,
        "x_var_limit": 4,
        "spot_var_count": 2,
        "clauses": [[1, -2], [3, 4]],
        "bounds": {"[[0,1]]": 2},
        "schedule": None,
        "objective": None,
    }
    payload.update(overrides)
    return payload


def _cold_run(store, circuit=None):
    """One subset sweep of the paper circuit on qx4, artifacts in *store*."""
    clear_skeleton_cache()
    return SATMapper(ibm_qx4(), use_subsets=True).map(
        circuit or paper_example_cnot_skeleton(),
        artifacts=ArtifactCache(store),
    )


# ----------------------------------------------------------------------
# Store tier
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_roundtrip_and_fresh_process_reopen(self, tmp_path):
        path = tmp_path / "artifacts.sqlite"
        store = ResultStore(path)
        store.put_artifact("key", _payload())
        assert store.get_artifact("key")["clauses"] == [[1, -2], [3, 4]]
        fresh = ResultStore(path)
        assert fresh.get_artifact("key")["bounds"] == {"[[0,1]]": 2}

    def test_memory_only_store_roundtrips(self):
        store = ResultStore()
        store.put_artifact("key", _payload())
        assert store.get_artifact("key") is not None
        assert store.stats()["artifact_puts"] == 1

    def test_merge_unions_clauses_and_maxes_bounds(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        store.put_artifact("key", _payload(bounds={"A": 2}))
        store.put_artifact(
            "key",
            _payload(clauses=[[1, -2], [5, 6]], bounds={"A": 1, "B": 7}),
        )
        merged = store.get_artifact("key")
        assert merged["clauses"] == [[1, -2], [3, 4], [5, 6]]
        # Both bounds are proven, so the higher one wins per orientation.
        assert merged["bounds"] == {"A": 2, "B": 7}

    def test_merge_keeps_cheapest_schedule(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        store.put_artifact(
            "key", _payload(schedule=[[0, 1, 2]], objective=5)
        )
        store.put_artifact(
            "key", _payload(schedule=[[2, 1, 0]], objective=3)
        )
        store.put_artifact(
            "key", _payload(schedule=[[1, 0, 2]], objective=9)
        )
        merged = store.get_artifact("key")
        assert merged["schedule"] == [[2, 1, 0]]
        assert merged["objective"] == 3

    def test_bound_only_merge_keeps_clause_block(self, tmp_path):
        """A bound-only harvest (e.g. from a pruned family) must not clobber
        a clause-bearing row even though its block boundaries disagree."""
        store = ResultStore(tmp_path / "a.sqlite")
        store.put_artifact("key", _payload())
        store.put_artifact(
            "key",
            _payload(
                x_var_limit=10, spot_var_count=0, clauses=[],
                bounds={"C": 9},
            ),
        )
        merged = store.get_artifact("key")
        assert merged["x_var_limit"] == 4
        assert merged["clauses"] == [[1, -2], [3, 4]]
        assert merged["bounds"]["C"] == 9

    def test_clause_union_is_capped(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        limit = MAX_ARTIFACT_CLAUSES
        big = [[1, -2, (3 if i % 2 else 4), (6 if i % 3 else 5)]
               for i in range(4)]
        store.put_artifact("key", _payload(clauses=[[1]] * 1))
        store.put_artifact("key", _payload(clauses=big))
        merged = store.get_artifact("key")
        assert len(merged["clauses"]) <= limit

    def test_invalid_payload_rejected_on_put(self):
        store = ResultStore()
        store.put_artifact("key", {"version": ARTIFACT_PAYLOAD_VERSION})
        assert store.get_artifact("key") is None
        stats = store.stats()
        assert stats["invalid_rejected"] == 1
        assert stats["artifact_puts"] == 0

    def test_corrupt_row_dropped_as_miss(self, tmp_path):
        path = tmp_path / "a.sqlite"
        store = ResultStore(path, max_memory_entries=0)
        store.put_artifact("key", _payload())
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE artifacts SET payload = ? WHERE skeleton_key = ?",
                ("{ not json", "key"),
            )
        assert store.get_artifact("key") is None
        assert store.stats()["artifact_corrupt_dropped"] == 1
        with sqlite3.connect(path) as conn:
            count = conn.execute("SELECT COUNT(*) FROM artifacts").fetchone()[0]
        assert count == 0  # the bad row is deleted, not served again

    def test_foreign_version_dropped_as_corrupt(self, tmp_path):
        path = tmp_path / "a.sqlite"
        store = ResultStore(path, max_memory_entries=0)
        store.put_artifact("key", _payload())
        newer = _payload(version=ARTIFACT_PAYLOAD_VERSION + 1)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE artifacts SET payload = ? WHERE skeleton_key = ?",
                (json.dumps(newer), "key"),
            )
        assert store.get_artifact("key") is None
        assert store.stats()["artifact_corrupt_dropped"] == 1

    def test_ttl_expires_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite", ttl_seconds=0.05)
        store.put_artifact("key", _payload())
        assert store.get_artifact("key") is not None
        time.sleep(0.15)
        assert store.get_artifact("key") is None
        assert store.stats()["artifact_expired_dropped"] >= 1

    def test_prune_report_covers_artifact_rows(self, tmp_path):
        path = tmp_path / "a.sqlite"
        store = ResultStore(path, max_memory_entries=0)
        store.put_artifact("old", _payload())
        store.put_artifact("new", _payload())
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE artifacts SET created_at = created_at - 1000 "
                "WHERE skeleton_key = 'old'"
            )
        report = store.prune_report(ttl_seconds=500)
        assert report["artifact_rows_pruned"] == 1
        assert report["artifact_bytes_reclaimed"] > 0
        assert store.get_artifact("old") is None
        assert store.get_artifact("new") is not None

    def test_stats_and_clear_cover_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        store.put_artifact("key", _payload())
        stats = store.stats()
        assert stats["artifact_rows"] == 1
        assert stats["artifact_bytes"] > 0
        store.clear()
        assert store.get_artifact("key") is None
        assert store.stats()["artifact_rows"] == 0

    def test_drop_memory_keeps_disk_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        store.put_artifact("key", _payload())
        store.drop_memory()
        assert store.get_artifact("key") is not None

    def test_drop_memory_keeps_memory_only_artifacts(self):
        # A memory-only store has no disk tier to re-read from; flushing
        # its artifact memory would silently lose fleet knowledge.
        store = ResultStore()
        store.put_artifact("key", _payload())
        store.drop_memory()
        assert store.get_artifact("key") is not None

    def test_artifact_cache_pickles_through_path(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        store.put_artifact("key", _payload())
        cache = pickle.loads(pickle.dumps(ArtifactCache(store)))
        assert cache.load("key")["clauses"] == [[1, -2], [3, 4]]
        cache.save("other", _payload())
        assert store.get_artifact("other") is not None

    def test_memory_only_cache_degrades_after_pickling(self):
        store = ResultStore()
        store.put_artifact("key", _payload())
        cache = pickle.loads(pickle.dumps(ArtifactCache(store)))
        # No path to re-open on the far side: seeding degrades to cold.
        assert cache.load("key") is None
        cache.save("key", _payload())  # silently dropped, never an error


# ----------------------------------------------------------------------
# Correctness invariant: persisted clauses are implied at the target
# ----------------------------------------------------------------------
class TestImplicationProperty:
    def _populated_store(self, tmp_path):
        store = ResultStore(tmp_path / "artifacts.sqlite")
        cold = _cold_run(store)
        assert cold.added_cost == PAPER_MINIMAL_COST
        return store, cold

    def test_every_persisted_clause_is_implied_in_same_key_target(
        self, tmp_path
    ):
        """Property-style: for each artifact row, rebuild a fresh target
        instance of the same skeleton key and refute every clause."""
        store, _ = self._populated_store(tmp_path)
        with sqlite3.connect(store.path) as conn:
            keys = [
                row[0]
                for row in conn.execute("SELECT skeleton_key FROM artifacts")
            ]
        assert keys
        checked = 0
        for key in keys:
            gates, num_logical, num_physical, spots, undirected = (
                json.loads(key)
            )
            payload = store.get_artifact(key)
            assert payload is not None
            if not payload["clauses"]:
                continue
            # Any coupling with this undirected edge set instantiates the
            # same skeleton; the bidirectional completion is the adversarial
            # choice (maximally different edge block from the home device).
            coupling = CouplingMap(
                num_physical,
                [(a, b) for a, b in undirected]
                + [(b, a) for a, b in undirected],
            )
            clear_skeleton_cache()
            encoding = build_encoding(
                [tuple(gate) for gate in gates], num_logical, coupling,
                permutation_spots=spots,
            )
            assert payload["x_var_limit"] == encoding.x_var_limit
            assert payload["spot_var_count"] == (
                encoding.spot_var_end - encoding.spot_var_start
            )
            remap = template_clause_remap(
                payload["x_var_limit"], payload["spot_var_count"], encoding
            )
            for clause in payload["clauses"]:
                mapped = [
                    remap[abs(lit)] if lit > 0 else -remap[abs(lit)]
                    for lit in clause
                ]
                assert clause_is_implied(encoding.cnf, mapped), (
                    f"artifact clause {clause} not implied under key {key}"
                )
                checked += 1
        assert checked >= 1

    def test_warm_sweep_clean_under_import_checking(
        self, tmp_path, monkeypatch
    ):
        store, cold = self._populated_store(tmp_path)
        monkeypatch.setenv("REPRO_CHECK_IMPORTS", "1")
        warm = _cold_run(store)  # second run over the same store is warm
        assert warm.added_cost == cold.added_cost
        assert warm.statistics["artifact_hits"] >= 1
        assert warm.statistics["artifact_clauses_imported"] >= 1
        # The headline of the whole exercise: strictly fewer conflicts.
        assert (
            warm.statistics["solver_conflicts"]
            < cold.statistics["solver_conflicts"]
        )


# ----------------------------------------------------------------------
# Degradation: every bad input falls back to cold behaviour
# ----------------------------------------------------------------------
class TestDegradation:
    def test_empty_store_matches_cold_solving(self, tmp_path):
        clear_skeleton_cache()
        bare = SATMapper(ibm_qx4(), use_subsets=True).map(
            paper_example_cnot_skeleton()
        )
        seeded = _cold_run(ResultStore(tmp_path / "a.sqlite"))
        assert seeded.added_cost == bare.added_cost
        assert (
            seeded.statistics["solver_conflicts"]
            == bare.statistics["solver_conflicts"]
        )
        assert seeded.statistics["artifact_hits"] == 0
        assert seeded.statistics["artifact_misses"] >= 1
        assert seeded.statistics["artifact_seeding"] == 1
        assert bare.statistics["artifact_seeding"] == 0

    def test_corrupt_rows_degrade_to_cold(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite", max_memory_entries=0)
        cold = _cold_run(store)
        with sqlite3.connect(store.path) as conn:
            conn.execute("UPDATE artifacts SET payload = '!corrupt!'")
        second = _cold_run(ResultStore(store.path, max_memory_entries=0))
        assert second.added_cost == cold.added_cost
        assert second.statistics["artifact_hits"] == 0
        assert second.statistics["artifact_clauses_imported"] == 0

    def test_shape_mismatch_degrades_to_bound_only_with_note(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite", max_memory_entries=0)
        cold = _cold_run(store)
        with sqlite3.connect(store.path) as conn:
            rows = conn.execute(
                "SELECT skeleton_key, payload FROM artifacts"
            ).fetchall()
            for key, payload in rows:
                data = json.loads(payload)
                if data["clauses"]:
                    data["x_var_limit"] += 1  # foreign block boundary
                    conn.execute(
                        "UPDATE artifacts SET payload = ? "
                        "WHERE skeleton_key = ?",
                        (json.dumps(data), key),
                    )
        warm = _cold_run(ResultStore(store.path, max_memory_entries=0))
        assert warm.added_cost == cold.added_cost
        assert warm.statistics["artifact_clauses_imported"] == 0
        notes = warm.statistics.get("artifact_notes", [])
        assert any("bound-only seeding" in note for note in notes)

    def test_wrong_skeleton_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        _cold_run(store)
        # A structurally different circuit shares no skeleton key with the
        # paper circuit, so the populated store contributes nothing.
        different = paper_example_cnot_skeleton().copy()
        control, target = different.cnot_pairs()[0]
        different.cx(control, target)
        warm = _cold_run(store, circuit=different)
        assert warm.statistics["artifact_hits"] == 0
        assert warm.statistics["artifact_misses"] >= 1


# ----------------------------------------------------------------------
# Providers, pipeline and service plumbing
# ----------------------------------------------------------------------
class _BoundOnlyStore:
    """A store stub without an artifact tier (pre-PR-9 shape)."""

    def best_added_cost(self, *args, **kwargs):
        return None


class TestProvidersAndService:
    def test_clause_provider_offers_picklable_cache(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        provider = ClauseProvider(store)
        cache, notes = provider.artifact_cache(
            paper_example_cnot_skeleton(), ibm_qx4()
        )
        assert isinstance(cache, ArtifactCache)
        assert notes == []
        assert provider.upper_bound(
            paper_example_cnot_skeleton(), ibm_qx4()
        ) is None

    def test_clause_provider_degrades_without_artifact_tier(self):
        provider = ClauseProvider(_BoundOnlyStore())
        cache, notes = provider.artifact_cache(
            paper_example_cnot_skeleton(), ibm_qx4()
        )
        assert cache is None
        assert any("no artifact tier" in note for note in notes)

    def test_chain_resolves_first_artifact_cache(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        chain = BoundProviderChain(
            [ClauseProvider(_BoundOnlyStore()), ClauseProvider(store)]
        )
        cache, provider_name, notes = chain.resolve_artifacts(
            paper_example_cnot_skeleton(), ibm_qx4()
        )
        assert isinstance(cache, ArtifactCache)
        assert provider_name == "artifact"
        assert any("no artifact tier" in note for note in notes)

    def test_parallel_fanout_agrees_with_sequential(self, tmp_path):
        circuit = paper_example_cnot_skeleton()
        store = ResultStore(tmp_path / "a.sqlite")
        options = {"use_subsets": True}
        clear_skeleton_cache()
        sequential = MappingPipeline(
            ibm_qx4(), engine="sat", engine_options=options, workers=1,
            bound_providers=[ClauseProvider(store)],
        ).map(circuit)
        clear_skeleton_cache()
        parallel = MappingPipeline(
            ibm_qx4(), engine="sat", engine_options=options, workers=4,
            bound_providers=[ClauseProvider(store)],
        ).map(circuit)
        assert sequential.added_cost == parallel.added_cost
        assert sequential.statistics["artifact_provider"] == "artifact"
        assert parallel.statistics["artifact_provider"] == "artifact"
        # The second (parallel) run is warm from the sequential harvest.
        assert parallel.statistics["artifact_hits"] >= 1

    def test_service_stamps_artifact_provenance_and_stats(self):
        async def scenario():
            circuit = paper_example_cnot_skeleton()
            store = ResultStore()
            async with MappingService(
                ibm_qx4(), engine="sat",
                engine_options={"use_subsets": True}, store=store,
            ) as service:
                first = await service.submit(circuit)
                cold = await service.result(first, timeout=120)
                cold_provenance = service.status(first)["provenance"]
                fingerprint = service.status(first)["fingerprint"]
                # Forget the *result* (artifact rows survive): the resubmit
                # re-solves but warm-starts from the artifact tier.
                assert store.delete(fingerprint)
                second = await service.submit(circuit)
                warm = await service.result(second, timeout=120)
                warm_provenance = service.status(second)["provenance"]
                return cold, cold_provenance, warm, warm_provenance, (
                    service.stats()
                )

        cold, cold_prov, warm, warm_prov, stats = asyncio.run(scenario())
        assert cold.added_cost == warm.added_cost == PAPER_MINIMAL_COST
        assert cold_prov["artifact_provider"] == "artifact"
        assert cold_prov["artifact_misses"] >= 1
        assert warm_prov["cache_hit"] is False
        assert warm_prov["artifact_hits"] >= 1
        assert warm_prov["artifact_clauses_imported"] >= 1
        assert (
            warm.statistics["solver_conflicts"]
            < cold.statistics["solver_conflicts"]
        )
        totals = stats["artifact_seeding"]
        assert totals["artifact_hits"] >= 1
        assert totals["artifact_misses"] >= 1
        assert stats["store"]["artifact_rows"] >= 1

    def test_service_artifact_seeding_can_be_disabled(self):
        async def scenario():
            circuit = paper_example_cnot_skeleton()
            async with MappingService(
                ibm_qx4(), engine="sat",
                engine_options={"use_subsets": True},
                store=ResultStore(), seed_artifacts=False,
            ) as service:
                job = await service.submit(circuit)
                await service.result(job, timeout=120)
                return service.status(job)["provenance"]

        provenance = asyncio.run(scenario())
        assert "artifact_provider" not in provenance
        assert "artifact_hits" not in provenance
