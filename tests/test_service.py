"""Tests for the async MappingService: job semantics, caching, routing.

The executor the service drains batches through is selectable via the
``REPRO_TEST_EXECUTOR`` environment variable (``thread``/``process``), so CI
can run this module once per pool type without duplicating the tests.
"""

import asyncio
import os

import pytest

from repro.arch.devices import ibm_qx2, ibm_qx4, ibm_qx5
from repro.benchlib.generators import random_clifford_t_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.pipeline.registry import DEFAULT_REGISTRY
from repro.service.errors import (
    JobNotFoundError,
    MappingFailedError,
    RoutingError,
    ServiceStateError,
)
from repro.service.fingerprint import job_fingerprint
from repro.service.service import DONE, FAILED, MappingService
from repro.service.store import ResultStore

EXECUTOR = os.environ.get("REPRO_TEST_EXECUTOR", "thread")


def run(coroutine):
    return asyncio.run(coroutine)


def _circuit(seed=7):
    return random_clifford_t_circuit(3, 4, 6, seed=seed)


def _service(**kwargs):
    kwargs.setdefault("engine", "dp")
    kwargs.setdefault("executor", EXECUTOR)
    kwargs.setdefault("workers", 2)
    couplings = kwargs.pop("couplings", ibm_qx4())
    return MappingService(couplings, **kwargs)


class _CountingMapper:
    """Registry-compatible mapper that counts its map() invocations."""

    calls = 0

    def __init__(self, coupling):
        self.coupling = coupling

    def map(self, circuit):
        type(self).calls += 1
        return DPMapper(self.coupling).map(circuit)


@pytest.fixture()
def counting_engine():
    _CountingMapper.calls = 0
    DEFAULT_REGISTRY.register(
        "counting_test_engine",
        lambda coupling, **options: _CountingMapper(coupling),
        overwrite=True,
    )
    return "counting_test_engine"


class TestSubmitResult:
    def test_submit_and_result(self):
        async def scenario():
            async with _service() as service:
                job_id = await service.submit(_circuit())
                result = await service.result(job_id, timeout=60)
                status = service.status(job_id)
                return result, status

        result, status = run(scenario())
        assert result.engine == "dp"
        assert status["status"] == DONE
        assert status["provenance"]["cache_hit"] is False
        assert status["provenance"]["executor"] == EXECUTOR
        assert "elapsed_seconds" in status["provenance"]

    def test_unknown_job_raises_structured_error(self):
        async def scenario():
            async with _service() as service:
                with pytest.raises(JobNotFoundError) as excinfo:
                    service.status("job-999999")
                return excinfo.value

        error = run(scenario())
        assert error.code == "job-not-found"

    def test_submit_before_start_raises(self):
        service = _service()
        with pytest.raises(ServiceStateError):
            run(service.submit(_circuit()))

    def test_structured_failure_for_unmappable_circuit(self):
        # The DP engine refuses exhaustive enumeration on the 16-qubit QX5;
        # the service must surface that as a structured per-job failure.
        async def failing():
            async with _service(couplings=ibm_qx5()) as service:
                wide = QuantumCircuit(16, name="wide")
                wide.cx(0, 15)
                job_id = await service.submit(wide)
                with pytest.raises(MappingFailedError) as excinfo:
                    await service.result(job_id, timeout=60)
                return service.status(job_id), excinfo.value

        status, error = run(failing())
        assert status["status"] == FAILED
        assert error.code == "mapping-failed"
        assert status["error"]["code"] == "mapping-failed"


class TestResultCaching:
    def test_repeated_submit_served_from_store_without_mapper(self, counting_engine):
        """PR acceptance gate: the second identical job never hits a mapper."""

        async def scenario():
            store = ResultStore()
            async with _service(engine=counting_engine, store=store) as service:
                first = await service.submit(_circuit())
                result_one = await service.result(first, timeout=60)
                calls_after_first = _CountingMapper.calls
                second = await service.submit(_circuit())
                result_two = await service.result(second, timeout=60)
                return (
                    calls_after_first,
                    _CountingMapper.calls,
                    result_one,
                    result_two,
                    service.status(second),
                    service.stats(),
                )

        calls_one, calls_two, result_one, result_two, status, stats = run(scenario())
        assert calls_one == 1
        assert calls_two == 1  # no mapper invocation for the second submit
        assert status["provenance"]["cache_hit"] is True
        assert result_two.added_cost == result_one.added_cost
        assert stats["cache_hits"] == 1
        assert stats["solved"] == 1

    def test_persistent_store_shared_across_service_instances(self, tmp_path,
                                                              counting_engine):
        async def scenario():
            path = tmp_path / "results.sqlite"
            async with _service(
                engine=counting_engine, store=ResultStore(path)
            ) as service:
                job = await service.submit(_circuit())
                await service.result(job, timeout=60)
            # New service, new store object, same file: still a cache hit.
            async with _service(
                engine=counting_engine, store=ResultStore(path)
            ) as service:
                job = await service.submit(_circuit())
                await service.result(job, timeout=60)
                return _CountingMapper.calls, service.status(job)

        calls, status = run(scenario())
        assert calls == 1
        assert status["provenance"]["cache_hit"] is True

    def test_inflight_duplicates_coalesce(self, counting_engine):
        async def scenario():
            async with _service(engine=counting_engine) as service:
                first = await service.submit(_circuit())
                second = await service.submit(_circuit())
                results = await asyncio.gather(
                    service.result(first, timeout=60),
                    service.result(second, timeout=60),
                )
                return (
                    _CountingMapper.calls,
                    results,
                    service.status(second),
                    service.stats(),
                )

        calls, results, status, stats = run(scenario())
        assert calls == 1  # one solve fulfilled both jobs
        assert results[0].added_cost == results[1].added_cost
        assert stats["coalesced"] == 1
        assert status["provenance"]["coalesced_with"].startswith("job-")
        # Coalescing is reported distinctly from a store hit.
        assert status["provenance"]["coalesced"] is True
        assert status["provenance"]["cache_hit"] is False

    def test_identical_jobs_share_fingerprint(self):
        circuit = _circuit()
        fp_one = job_fingerprint(circuit, ibm_qx4(), "dp", {})
        fp_two = job_fingerprint(_circuit(), ibm_qx4(), "dp", {})
        assert fp_one == fp_two


class TestBatchAndRouting:
    def test_submit_many_preserves_order_and_maps_all(self):
        async def scenario():
            circuits = [_circuit(seed) for seed in range(4)]
            async with _service() as service:
                job_ids = await service.submit_many(circuits)
                results = [
                    await service.result(job_id, timeout=120) for job_id in job_ids
                ]
                return circuits, job_ids, results

        circuits, job_ids, results = run(scenario())
        assert len(job_ids) == len(set(job_ids)) == 4
        expected = [DPMapper(ibm_qx4()).map(c).added_cost for c in circuits]
        assert [r.added_cost for r in results] == expected

    def test_routing_picks_smallest_fitting_device(self):
        async def scenario():
            couplings = {"qx2": ibm_qx2(), "qx5": ibm_qx5()}
            async with _service(couplings=couplings, engine="sabre") as service:
                small = await service.submit(_circuit())
                wide = QuantumCircuit(9, name="wide")
                wide.cx(0, 8)
                big = await service.submit(wide)
                await service.result(small, timeout=60)
                await service.result(big, timeout=60)
                return service.status(small)["arch"], service.status(big)["arch"]

        small_arch, big_arch = run(scenario())
        assert small_arch == "qx2"  # 5 qubits suffice
        assert big_arch == "qx5"  # only the 16-qubit device fits

    def test_explicit_arch_is_honoured_and_checked(self):
        async def scenario():
            couplings = {"qx2": ibm_qx2(), "qx5": ibm_qx5()}
            async with _service(couplings=couplings, engine="sabre") as service:
                job = await service.submit(_circuit(), arch="qx5")
                await service.result(job, timeout=60)
                arch = service.status(job)["arch"]
                wide = QuantumCircuit(9)
                wide.cx(0, 8)
                with pytest.raises(RoutingError):
                    await service.submit(wide, arch="qx2")
                with pytest.raises(RoutingError):
                    await service.submit(_circuit(), arch="nonexistent")
                return arch

        assert run(scenario()) == "qx5"

    def test_mixed_batch_failure_isolation(self):
        async def scenario():
            async with _service() as service:
                good = await service.submit(_circuit())
                too_big = QuantumCircuit(9, name="too_big")
                too_big.cx(0, 8)
                with pytest.raises(RoutingError):
                    await service.submit(too_big)  # no fitting device
                result = await service.result(good, timeout=60)
                return result

        assert run(scenario()).engine == "dp"

    def test_jobs_listing_and_stats(self):
        async def scenario():
            async with _service() as service:
                await service.submit(_circuit())
                await service.submit(_circuit(seed=8))
                for job in service.jobs():
                    await service.result(job["job_id"], timeout=60)
                return service.jobs(), service.stats()

        jobs, stats = run(scenario())
        assert len(jobs) == 2
        assert all(job["status"] == DONE for job in jobs)
        assert stats["submitted"] == 2
        assert stats["devices"] == ["ibm_qx4"]
        assert stats["store"]["puts"] >= 1
