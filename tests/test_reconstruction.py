"""Unit tests for mapped-circuit reconstruction from schedules."""

import pytest

from repro.arch.devices import ibm_qx4
from repro.circuit.circuit import QuantumCircuit
from repro.exact.reconstruction import (
    ReconstructionError,
    default_schedule,
    reconstruct_circuit,
)
from repro.exact.result import MappingSchedule
from repro.sim.equivalence import mapped_circuit_equivalent
from repro.verify import check_coupling_compliance


class TestReconstruction:
    def test_identity_schedule_single_cnot(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(1, 0)], initial_mapping=(1, 0)
        )
        mapped, cost = reconstruct_circuit(circuit, schedule, ibm_qx4())
        assert cost.swaps == 0
        assert cost.reversals == 0
        assert mapped.count_cnot() == 1
        assert check_coupling_compliance(mapped, ibm_qx4()).compliant

    def test_reversed_placement_adds_four_hadamards(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        # Logical control on physical 0, target on physical 1: only (1, 0) is
        # in the coupling map, so the CNOT must be reversed.
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(0, 1)], initial_mapping=(0, 1)
        )
        mapped, cost = reconstruct_circuit(circuit, schedule, ibm_qx4())
        assert cost.reversals == 1
        assert mapped.count_ops()["h"] == 4
        assert check_coupling_compliance(mapped, ibm_qx4()).compliant
        assert mapped_circuit_equivalent(circuit, mapped, (0, 1), (0, 1))

    def test_mapping_change_inserts_swaps(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        schedule = MappingSchedule(
            num_logical=2,
            num_physical=5,
            mappings=[(1, 0), (0, 1)],
            initial_mapping=(1, 0),
        )
        mapped, cost = reconstruct_circuit(circuit, schedule, ibm_qx4())
        assert cost.swaps == 1
        # One swap = 7 elementary gates when decomposed.
        assert mapped.gate_cost() == 2 + 7 + 4 * cost.reversals
        assert mapped_circuit_equivalent(circuit, mapped, (1, 0), (0, 1))

    def test_opaque_swaps_option(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        schedule = MappingSchedule(
            num_logical=2,
            num_physical=5,
            mappings=[(1, 0), (0, 1)],
            initial_mapping=(1, 0),
        )
        mapped, cost = reconstruct_circuit(
            circuit, schedule, ibm_qx4(), decompose_swaps=False
        )
        assert mapped.count_swap() == 1
        assert mapped.gate_cost() == 2 + 7 + 4 * cost.reversals

    def test_single_qubit_gates_follow_their_logical_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.t(1)
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(2, 0)], initial_mapping=(2, 0)
        )
        mapped, _ = reconstruct_circuit(circuit, schedule, ibm_qx4())
        names_and_qubits = [(g.name, g.qubits) for g in mapped]
        assert ("h", (2,)) in names_and_qubits
        assert ("t", (0,)) in names_and_qubits

    def test_measure_and_barrier_are_remapped(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.barrier()
        circuit.measure(0, 0)
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(3, 2)], initial_mapping=(3, 2)
        )
        mapped, _ = reconstruct_circuit(circuit, schedule, ibm_qx4())
        measure = [g for g in mapped if g.name == "measure"][0]
        assert measure.qubits == (3,)
        barrier = [g for g in mapped if g.name == "barrier"][0]
        assert set(barrier.qubits) == {3, 2}

    def test_uncoupled_placement_is_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(0, 4)], initial_mapping=(0, 4)
        )
        with pytest.raises(ReconstructionError):
            reconstruct_circuit(circuit, schedule, ibm_qx4())

    def test_schedule_length_mismatch_is_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(1, 0)], initial_mapping=(1, 0)
        )
        with pytest.raises(ReconstructionError):
            reconstruct_circuit(circuit, schedule, ibm_qx4())

    def test_non_cnot_two_qubit_gate_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        schedule = default_schedule(2, ibm_qx4())
        with pytest.raises(ReconstructionError):
            reconstruct_circuit(circuit, schedule, ibm_qx4())

    def test_default_schedule_fits_device(self):
        schedule = default_schedule(3, ibm_qx4())
        assert schedule.initial_mapping == (0, 1, 2)
        with pytest.raises(ReconstructionError):
            default_schedule(6, ibm_qx4())
