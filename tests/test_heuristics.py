"""Unit tests for the heuristic mappers and initial layouts."""

import pytest

from repro.arch.devices import ibm_qx4, ibm_qx5, linear_architecture
from repro.benchlib.generators import random_clifford_t_circuit
from repro.benchlib.paper_example import paper_example_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.heuristic.initial_layout import (
    greedy_interaction_layout,
    random_layout,
    trivial_layout,
)
from repro.heuristic.sabre_lite import SabreLiteMapper
from repro.heuristic.stochastic_swap import StochasticSwapMapper
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result


class TestInitialLayouts:
    def test_trivial(self):
        circuit = QuantumCircuit(3)
        assert trivial_layout(circuit, ibm_qx4()) == (0, 1, 2)

    def test_trivial_rejects_oversized_circuit(self):
        with pytest.raises(ValueError):
            trivial_layout(QuantumCircuit(6), ibm_qx4())

    def test_random_is_injective_and_seeded(self):
        import random

        circuit = QuantumCircuit(4)
        layout_a = random_layout(circuit, ibm_qx4(), random.Random(3))
        layout_b = random_layout(circuit, ibm_qx4(), random.Random(3))
        assert layout_a == layout_b
        assert len(set(layout_a)) == 4
        assert all(0 <= p < 5 for p in layout_a)

    def test_greedy_layout_places_all_qubits_injectively(self):
        circuit = random_clifford_t_circuit(5, 4, 12, seed=2)
        layout = greedy_interaction_layout(circuit, ibm_qx4())
        assert sorted(set(layout)) == sorted(layout)
        assert len(layout) == 5

    def test_greedy_layout_puts_busiest_qubit_on_best_connected(self):
        circuit = QuantumCircuit(3)
        # Qubit 1 interacts with everyone.
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 1)
        layout = greedy_interaction_layout(circuit, ibm_qx4())
        # Physical qubit 2 has the highest degree on QX4.
        assert layout[1] == 2


class TestStochasticSwapMapper:
    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            StochasticSwapMapper(ibm_qx4(), trials=0)

    def test_maps_paper_example(self):
        result = StochasticSwapMapper(ibm_qx4(), trials=5, seed=1).map(
            paper_example_circuit()
        )
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)
        assert not result.optimal
        assert result.engine == "stochastic"

    def test_deterministic_given_seed(self):
        circuit = random_clifford_t_circuit(4, 3, 8, seed=5)
        first = StochasticSwapMapper(ibm_qx4(), trials=3, seed=9).map(circuit)
        second = StochasticSwapMapper(ibm_qx4(), trials=3, seed=9).map(circuit)
        assert first.total_cost == second.total_cost

    def test_never_below_exact_minimum(self):
        circuit = random_clifford_t_circuit(4, 4, 8, seed=11)
        exact = DPMapper(ibm_qx4()).map(circuit)
        heuristic = StochasticSwapMapper(ibm_qx4(), trials=3, seed=0).map(circuit)
        assert heuristic.added_cost >= exact.added_cost

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuits_stay_equivalent(self, seed):
        circuit = random_clifford_t_circuit(5, 5, 10, seed=seed)
        result = StochasticSwapMapper(ibm_qx4(), trials=2, seed=seed).map(circuit)
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)

    def test_works_on_larger_device(self):
        circuit = random_clifford_t_circuit(8, 5, 15, seed=4)
        result = StochasticSwapMapper(ibm_qx5(), trials=2, seed=0).map(circuit)
        assert verify_result(result, ibm_qx5()).compliant

    def test_circuit_too_large_rejected(self):
        with pytest.raises(ValueError):
            StochasticSwapMapper(ibm_qx4()).map(QuantumCircuit(6))


class TestSabreLiteMapper:
    def test_maps_paper_example(self):
        result = SabreLiteMapper(ibm_qx4()).map(paper_example_circuit())
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)
        assert result.engine == "sabre_lite"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_circuits_stay_equivalent(self, seed):
        circuit = random_clifford_t_circuit(4, 4, 10, seed=seed)
        result = SabreLiteMapper(ibm_qx4(), seed=seed).map(circuit)
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)

    def test_never_below_exact_minimum(self):
        circuit = random_clifford_t_circuit(4, 2, 9, seed=17)
        exact = DPMapper(ibm_qx4()).map(circuit)
        heuristic = SabreLiteMapper(ibm_qx4()).map(circuit)
        assert heuristic.added_cost >= exact.added_cost

    def test_directed_line_architecture(self):
        line = linear_architecture(4)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 0)
        result = SabreLiteMapper(line).map(circuit)
        assert verify_result(result, line).compliant
        assert result_is_equivalent(result)
