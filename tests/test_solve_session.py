"""Tests for the incremental SolveSession and the session-based optimiser."""

import itertools
import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.optimize import ObjectiveTerm, OptimizingSolver
from repro.sat.session import SolveSession
from repro.sat.solver import SolverResult


def _weighted_instance():
    """CNF ``(a | b)`` with objective ``3a + 5b`` — minimum 3."""
    cnf = CNF()
    a, b = cnf.new_var("a"), cnf.new_var("b")
    cnf.add_clause([a, b])
    return cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)]


def _random_instance(seed):
    """A random CNF + objective whose minimum is computable by enumeration."""
    rng = random.Random(seed)
    num_vars = rng.randint(3, 7)
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for _ in range(rng.randint(3, 12)):
        variables = rng.sample(range(1, num_vars + 1), min(3, num_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
    objective = [
        ObjectiveTerm(rng.randint(0, 6), v if rng.random() < 0.7 else -v)
        for v in range(1, num_vars + 1)
    ]
    return cnf, objective, num_vars


def _brute_force_minimum(cnf, objective, num_vars):
    best = None
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if not cnf.evaluate(assignment):
            continue
        value = 0
        for term in objective:
            lit_true = assignment[abs(term.literal)]
            if term.literal < 0:
                lit_true = not lit_true
            if lit_true:
                value += term.weight
        if best is None or value < best:
            best = value
    return best


class TestSolveSession:
    def test_bounds_move_in_both_directions(self):
        cnf, objective = _weighted_instance()
        session = SolveSession(cnf, [(t.weight, t.literal) for t in objective])
        assert session.solve_with_bound(4) is SolverResult.SAT
        assert session.objective_value(session.model()) == 3
        assert session.solve_with_bound(2) is SolverResult.UNSAT
        # An assumed UNSAT bound must not poison a looser probe.
        assert session.solve_with_bound(4) is SolverResult.SAT
        assert session.solve_with_bound(None) is SolverResult.SAT

    def test_trivial_bound_needs_no_selector(self):
        cnf, objective = _weighted_instance()
        session = SolveSession(cnf, [(t.weight, t.literal) for t in objective])
        assert session.selector(8) is None  # total weight is 8
        assert session.solve_with_bound(100) is SolverResult.SAT

    def test_negative_bound_rejected(self):
        cnf, objective = _weighted_instance()
        session = SolveSession(cnf, [(t.weight, t.literal) for t in objective])
        with pytest.raises(ValueError):
            session.selector(-1)

    def test_ladder_nodes_are_shared_between_bounds(self):
        cnf, objective, _ = _random_instance(7)
        session = SolveSession(cnf, [(t.weight, t.literal) for t in objective])
        session.selector(6)
        created_first = session.statistics["bound_nodes_created"]
        session.selector(5)
        assert session.statistics["bound_nodes_reused"] > 0
        # Tightening by one reuses most of the ladder.
        created_second = session.statistics["bound_nodes_created"] - created_first
        assert created_second <= created_first

    def test_committed_bounds_only_ever_tighten(self):
        cnf, objective = _weighted_instance()
        session = SolveSession(cnf, [(t.weight, t.literal) for t in objective])
        assert session.solve_with_bound(4, commit=True) is SolverResult.SAT
        assert session.committed_bound == 4
        # A looser commit is a no-op: the effective bound stays at 4.
        assert session.solve_with_bound(6, commit=True) is SolverResult.SAT
        assert session.committed_bound == 4
        assert session.objective_value(session.model()) <= 4
        assert session.solve_with_bound(2, commit=True) is SolverResult.UNSAT
        assert session.committed_bound == 2

    def test_caller_cnf_is_never_mutated(self):
        cnf, objective = _weighted_instance()
        clauses_before = cnf.num_clauses
        session = SolveSession(cnf, [(t.weight, t.literal) for t in objective])
        session.solve_with_bound(3)
        session.solve_with_bound(2, commit=False)
        assert cnf.num_clauses == clauses_before


class TestOptimizerOnSession:
    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_minimum(self, strategy, seed):
        cnf, objective, num_vars = _random_instance(seed)
        expected = _brute_force_minimum(cnf, objective, num_vars)
        result = OptimizingSolver(cnf, objective).minimize(strategy=strategy)
        if expected is None:
            assert result.status == "unsat"
        else:
            assert result.status == "optimal"
            assert result.objective == expected

    def test_binary_uses_one_solver_for_all_probes(self):
        cnf, objective, _ = _random_instance(3)
        result = OptimizingSolver(cnf, objective).minimize(strategy="binary")
        assert result.statistics["fresh_solver"] == 1  # one per minimize, total
        assert result.statistics["solve_calls"] == result.iterations

    def test_linear_reports_session_statistics(self):
        cnf, objective = _weighted_instance()
        result = OptimizingSolver(cnf, objective).minimize()
        assert result.status == "optimal"
        assert result.statistics["solve_calls"] == result.iterations
        assert "learned_clauses_retained" in result.statistics
        assert "bound_nodes_created" in result.statistics

    def test_binary_session_reuse_across_minimize_calls(self):
        cnf, objective, num_vars = _random_instance(5)
        expected = _brute_force_minimum(cnf, objective, num_vars)
        if expected is None:
            pytest.skip("instance is unsatisfiable for this seed")
        optimizer = OptimizingSolver(cnf, objective)
        session = optimizer.make_session()
        first = optimizer.minimize(strategy="binary", session=session)
        assert first.objective == expected
        # Binary probes are assumptions only, so the session stays fully
        # reusable: re-minimising with the optimum as a seed agrees and runs
        # on the same (already warmed) solver.
        second = optimizer.minimize(
            strategy="binary", session=session, upper_bound=expected
        )
        assert second.status == "optimal"
        assert second.objective == expected
        assert second.statistics["fresh_solver"] == 0

    def test_linear_session_reuse_serves_tightened_bounds(self):
        cnf, objective, num_vars = _random_instance(5)
        expected = _brute_force_minimum(cnf, objective, num_vars)
        if expected is None:
            pytest.skip("instance is unsatisfiable for this seed")
        optimizer = OptimizingSolver(cnf, objective)
        session = optimizer.make_session()
        first = optimizer.minimize(strategy="linear", session=session)
        assert first.objective == expected
        # A completed linear descent committed ``optimum - 1``: the session
        # now permanently answers "nothing strictly cheaper exists", which
        # is exactly the incumbent-tightening question the subset sweep
        # asks; the proven optimum itself comes from the recorded outcome.
        if expected > 0:
            tightened = optimizer.minimize(
                strategy="linear", session=session, upper_bound=expected - 1
            )
            assert tightened.status == "unsat"
            assert tightened.statistics["fresh_solver"] == 0

    def test_fresh_session_per_call_keeps_calls_independent(self):
        cnf, objective = _weighted_instance()
        optimizer = OptimizingSolver(cnf, objective)
        assert optimizer.minimize(upper_bound=2).status == "unsat"
        # The bound of the previous call must not constrain this one.
        assert optimizer.minimize(upper_bound=10).objective == 3
        assert optimizer.minimize().objective == 3

    def test_seeded_descent_skips_the_wandering_prefix(self):
        cnf, objective, num_vars = _random_instance(11)
        expected = _brute_force_minimum(cnf, objective, num_vars)
        if expected is None:
            pytest.skip("instance is unsatisfiable for this seed")
        unseeded = OptimizingSolver(cnf, objective).minimize()
        seeded = OptimizingSolver(cnf, objective).minimize(upper_bound=expected)
        assert seeded.objective == unseeded.objective == expected
        assert seeded.iterations <= unseeded.iterations
