"""Tests for the versioned wire protocol of the network serving layer.

Round-trip identity for every registered message type, strict rejection of
unknown fields / missing fields / unsupported versions, and the stable
service-error → HTTP status table.
"""

import json

import pytest

from repro.server.protocol import (
    DEFAULT_ERROR_STATUS,
    HTTP_STATUS_BY_ERROR_CODE,
    CancelRequest,
    ErrorEnvelope,
    HealthReport,
    JobStatus,
    ProtocolError,
    PruneReport,
    PruneRequest,
    ResultPayload,
    StatsReport,
    StreamEvent,
    SubmitRequest,
    from_json,
    from_wire,
    http_status_for_code,
    registered_messages,
)
from repro.service.errors import (
    JobNotFoundError,
    MappingFailedError,
    RoutingError,
    ServiceError,
    ServiceStateError,
    ServiceUnavailable,
    StoreError,
)

#: One representative, fully populated instance per registered message type.
SAMPLES = [
    SubmitRequest(
        qasm="OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n",
        arch="ibm_qx4",
        engine="sat",
        options={"strategy": "odd", "use_subsets": True},
        circuit_name="example",
    ),
    CancelRequest(
        job_id="w1-job-000007",
        reason="operator requested shutdown of the sweep",
    ),
    JobStatus(
        job_id="w1-job-000007",
        status="done",
        fingerprint="abc123",
        circuit_name="example",
        arch="ibm_qx4",
        engine="sat",
        provenance={"cache_hit": False, "elapsed_seconds": 0.25},
        added_cost=4,
        optimal=True,
    ),
    ResultPayload(
        job_id="w1-job-000007",
        result={"schema_version": 1, "objective": 4},
        provenance={"cache_hit": True},
    ),
    ErrorEnvelope(
        error_code="job-not-found",
        message="unknown job id 'nope'",
        details={"job_id": "nope"},
        http_status=404,
    ),
    StatsReport(
        role="supervisor",
        stats={"queue_depth": 3},
        workers={"w0": {"submitted": 5}},
    ),
    HealthReport(
        ok=True,
        role="worker",
        pid=4242,
        queue_depth=2,
        in_flight=1,
        worker_id="w0",
        draining=False,
    ),
    StreamEvent(
        seq=9,
        job_id="w0-job-000003",
        status="failed",
        fingerprint="def456",
        circuit_name="bad",
        arch="ibm_qx5",
        engine="dp",
        error_code="mapping-failed",
        worker="w0",
    ),
    PruneRequest(ttl_seconds=3600.0, flush_memory=True),
    PruneReport(
        rows_pruned=12,
        bytes_reclaimed=34567,
        memory_dropped=8,
        ttl_seconds=3600.0,
        cache_dir="/tmp/cache",
        per_worker={"w0": {"rows_pruned": 12}},
    ),
]


class TestRoundTrip:
    def test_samples_cover_every_registered_type(self):
        sampled = {type(message) for message in SAMPLES}
        registered = set(registered_messages().values())
        assert sampled == registered

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=[type(m).TYPE for m in SAMPLES]
    )
    def test_to_json_from_json_identity(self, message):
        decoded = from_json(message.to_json())
        assert decoded == message
        assert type(decoded) is type(message)

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=[type(m).TYPE for m in SAMPLES]
    )
    def test_envelope_shape(self, message):
        envelope = message.to_wire()
        assert set(envelope) == {"type", "version", "payload"}
        assert envelope["type"] == type(message).TYPE
        assert envelope["version"] == type(message).VERSION
        # The envelope is genuinely JSON-ready.
        json.dumps(envelope)

    def test_defaults_round_trip_when_omitted(self):
        minimal = from_wire(
            {"type": "submit-request", "version": 1, "payload": {"qasm": "x"}}
        )
        assert minimal == SubmitRequest(qasm="x")
        assert minimal.options == {}


class TestStrictness:
    def test_unknown_payload_field_rejected(self):
        envelope = SAMPLES[0].to_wire()
        envelope["payload"]["surprise"] = 1
        with pytest.raises(ProtocolError) as info:
            from_wire(envelope)
        assert "surprise" in str(info.value)
        assert info.value.details["unknown_fields"] == ["surprise"]

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError) as info:
            from_wire({"type": "submit-request", "version": 1, "payload": {}})
        assert "qasm" in str(info.value)

    def test_unsupported_version_lists_supported_ones(self):
        with pytest.raises(ProtocolError) as info:
            from_wire(
                {"type": "submit-request", "version": 99, "payload": {"qasm": "x"}}
            )
        assert "unsupported version 99" in str(info.value)
        assert info.value.details["supported_versions"] == [1]

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError) as info:
            from_wire({"type": "no-such-message", "version": 1, "payload": {}})
        assert "unknown message type" in str(info.value)

    def test_extra_envelope_field_rejected(self):
        envelope = SAMPLES[0].to_wire()
        envelope["meta"] = {}
        with pytest.raises(ProtocolError):
            from_wire(envelope)

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError):
            from_json("{not json")

    def test_field_validation_rejects_wrong_types(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(qasm="").to_wire()
        with pytest.raises(ProtocolError):
            JobStatus(
                job_id="j", status="exploded", fingerprint="f",
                circuit_name="c", arch="a", engine="e",
            ).to_wire()
        with pytest.raises(ProtocolError):
            PruneRequest(ttl_seconds=-5.0).to_wire()
        with pytest.raises(ProtocolError):
            HealthReport(ok="yes", role="worker", pid=1).to_wire()


class TestErrorMapping:
    def test_every_builtin_error_code_has_a_row(self):
        for error_cls in (
            ServiceError, JobNotFoundError, MappingFailedError, RoutingError,
            ServiceStateError, ServiceUnavailable, StoreError,
        ):
            assert error_cls.code in HTTP_STATUS_BY_ERROR_CODE

    @pytest.mark.parametrize(
        "code,status",
        [
            ("job-not-found", 404),
            ("routing-failed", 400),
            ("mapping-failed", 500),
            ("service-state", 409),
            ("service-unavailable", 503),
            ("protocol-error", 400),
            ("not-found", 404),
            ("method-not-allowed", 405),
            ("upstream-failed", 502),
        ],
    )
    def test_status_table(self, code, status):
        assert http_status_for_code(code) == status

    def test_unknown_code_falls_back_to_500(self):
        assert http_status_for_code("code-from-the-future") == DEFAULT_ERROR_STATUS

    def test_envelope_from_error_and_back(self):
        error = JobNotFoundError("unknown job id 'x'", details={"job_id": "x"})
        envelope = ErrorEnvelope.from_error(error)
        assert envelope.http_status == 404
        assert envelope.error_code == "job-not-found"
        rebuilt = envelope.to_error()
        assert rebuilt.code == "job-not-found"
        assert rebuilt.details == {"job_id": "x"}
        assert str(error.message) in str(rebuilt)

    def test_from_error_reduces_unjsonable_details(self):
        error = ServiceError("boom", details={"weird": {1, 2}})
        envelope = ErrorEnvelope.from_error(error)
        json.dumps(envelope.to_wire())
