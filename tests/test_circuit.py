"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuit.circuit import CircuitError, QuantumCircuit
from repro.circuit.gates import CNOTGate, HGate


class TestConstruction:
    def test_requires_positive_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_and_len(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert len(circuit) == 2
        assert circuit.num_gates == 2
        assert list(circuit)[0] == HGate(0)

    def test_append_rejects_out_of_range_qubits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(0, 2)

    def test_measure_grows_clbits(self):
        circuit = QuantumCircuit(2)
        circuit.measure(0, 3)
        assert circuit.num_clbits == 4

    def test_extend(self):
        circuit = QuantumCircuit(2)
        circuit.extend([HGate(0), CNOTGate(0, 1)])
        assert circuit.num_gates == 2

    def test_equality(self):
        a = QuantumCircuit(2)
        a.h(0).cx(0, 1)
        b = QuantumCircuit(2)
        b.h(0).cx(0, 1)
        assert a == b
        b.x(1)
        assert a != b


class TestQueries:
    def make(self):
        circuit = QuantumCircuit(3, name="demo")
        circuit.h(0)
        circuit.t(1)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.x(2)
        return circuit

    def test_counts(self):
        circuit = self.make()
        assert circuit.count_cnot() == 2
        assert circuit.count_single_qubit() == 3
        assert circuit.count_swap() == 0
        assert circuit.count_ops() == {"h": 1, "t": 1, "cx": 2, "x": 1}

    def test_cnot_pairs(self):
        assert self.make().cnot_pairs() == [(0, 1), (1, 2)]

    def test_gate_cost_counts_swap_as_seven(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.swap(0, 1)
        assert circuit.gate_cost() == 8

    def test_gate_cost_ignores_directives(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.measure(0, 0)
        assert circuit.gate_cost() == 1

    def test_used_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(1, 3)
        assert circuit.used_qubits() == [1, 3]

    def test_depth(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.h(1)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        assert circuit.depth() == 3

    def test_depth_ignores_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(0)
        assert circuit.depth() == 2


class TestTransformations:
    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        clone = circuit.copy()
        clone.x(1)
        assert circuit.num_gates == 1
        assert clone.num_gates == 2

    def test_without_single_qubit_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).t(1).cx(1, 0)
        skeleton = circuit.without_single_qubit_gates()
        assert skeleton.num_gates == 2
        assert all(gate.is_cnot for gate in skeleton)

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        remapped = circuit.remap_qubits({0: 2, 1: 0}, num_qubits=3)
        assert remapped.num_qubits == 3
        assert remapped.gates[1] == CNOTGate(2, 0)

    def test_compose_requires_same_width(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            a.compose(b)

    def test_compose_concatenates(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b)
        assert combined.num_gates == 2
        assert a.num_gates == 1

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).t(0).cx(0, 1).rz(0.3, 1)
        inverse = circuit.inverse()
        names = [gate.name for gate in inverse]
        assert names == ["rz", "cx", "tdg", "h"]
        assert inverse.gates[0].params == (-0.3,)

    def test_inverse_rejects_directives(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.inverse()
