"""Assumption semantics of the incremental CDCL solver.

The contract under test (the foundation of :class:`repro.sat.session.
SolveSession` and everything above it):

* assumptions hold in any returned model,
* assumptions are fully undone between calls — nothing leaks into later
  solves,
* UNSAT-under-assumptions does not poison a later assumption-free (or
  differently assumed) solve,
* learned clauses measurably persist across ``solve()`` calls.
"""

import itertools
import random

import pytest

from repro.sat.solver import CDCLSolver, SolverResult

GUARD = 50  # guard variable of the guarded pigeonhole instance


def _guarded_pigeonhole(pigeons=4, holes=3):
    """Pigeonhole clauses, each disabled unless the GUARD literal is true.

    UNSAT exactly under the assumption ``GUARD``; trivially SAT without it.
    """
    solver = CDCLSolver()

    def var(i, j):
        return i * holes + j + 1

    for i in range(pigeons):
        solver.add_clause([-GUARD] + [var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([-GUARD, -var(i1, j), -var(i2, j)])
    return solver


class TestModelsHonourAssumptions:
    def test_positive_and_negative_assumptions_hold(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2, 3])
        assert solver.solve(assumptions=[-1, 3]) is SolverResult.SAT
        model = solver.model()
        assert model[1] is False
        assert model[3] is True

    def test_assumption_on_fresh_variable(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert solver.solve(assumptions=[7]) is SolverResult.SAT
        assert solver.model()[7] is True

    def test_zero_literal_rejected(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        with pytest.raises(ValueError):
            solver.solve(assumptions=[0])

    @pytest.mark.parametrize("seed", range(40))
    def test_agrees_with_unit_clause_semantics(self, seed):
        """solve(assumptions=A) must equal solving the formula plus A as units."""
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        clauses = []
        for _ in range(rng.randint(5, 30)):
            size = min(rng.randint(1, 3), num_vars)
            variables = rng.sample(range(1, num_vars + 1), size)
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])
        assume = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), rng.randint(1, num_vars))
        ]

        assumed = CDCLSolver()
        reference = CDCLSolver()
        for clause in clauses:
            assumed.add_clause(clause)
            reference.add_clause(clause)
        for literal in assume:
            reference.add_clause([literal])

        outcome = assumed.solve(assumptions=assume)
        assert outcome == reference.solve()
        if outcome is SolverResult.SAT:
            model = assumed.model()
            for literal in assume:
                assert model[abs(literal)] == (literal > 0)


class TestAssumptionsAreUndone:
    def test_no_leakage_into_later_solves(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -2]) is SolverResult.SAT
        # The opposite polarity must be reachable afterwards.
        assert solver.solve(assumptions=[-1, 2]) is SolverResult.SAT
        model = solver.model()
        assert model[1] is False and model[2] is True

    def test_assumption_does_not_become_a_unit(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is SolverResult.SAT
        # If -1 had leaked as a unit, adding clause [1] would now be UNSAT.
        solver.add_clause([1])
        assert solver.solve() is SolverResult.SAT
        assert solver.model()[1] is True


class TestUnsatUnderAssumptions:
    def test_does_not_poison_later_solves(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) is SolverResult.UNSAT
        assert solver.solve() is SolverResult.SAT
        assert solver.solve(assumptions=[1]) is SolverResult.SAT

    def test_contradictory_assumptions(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert solver.solve(assumptions=[2, -2]) is SolverResult.UNSAT
        assert solver.solve() is SolverResult.SAT

    def test_unsat_after_conflict_driven_search(self):
        solver = _guarded_pigeonhole()
        assert solver.solve(assumptions=[GUARD]) is SolverResult.UNSAT
        assert solver.statistics["conflicts"] > 0
        assert solver.solve() is SolverResult.SAT
        assert solver.solve(assumptions=[-GUARD]) is SolverResult.SAT

    def test_really_unsat_formula_stays_sticky(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) is SolverResult.UNSAT
        assert solver.solve() is SolverResult.UNSAT


class TestLearnedClausePersistence:
    def test_learned_clauses_survive_between_calls(self):
        solver = _guarded_pigeonhole()
        assert solver.solve(assumptions=[GUARD]) is SolverResult.UNSAT
        first_conflicts = solver.statistics["conflicts"]
        learned_after_first = solver.num_learned
        assert first_conflicts > 0
        assert learned_after_first > 0

        # The clauses learned while refuting the guarded instance are
        # consequences of the formula alone: they survive the SAT solve in
        # between and make the second refutation measurably cheaper.
        assert solver.solve() is SolverResult.SAT
        assert solver.num_learned >= learned_after_first

        before = solver.statistics["conflicts"]
        assert solver.solve(assumptions=[GUARD]) is SolverResult.UNSAT
        second_conflicts = solver.statistics["conflicts"] - before
        assert second_conflicts < first_conflicts

    def test_fresh_solver_pays_full_price_again(self):
        """Control experiment: without retention the rework is real."""
        solver = _guarded_pigeonhole()
        assert solver.solve(assumptions=[GUARD]) is SolverResult.UNSAT
        first_conflicts = solver.statistics["conflicts"]

        fresh = _guarded_pigeonhole()
        assert fresh.solve(assumptions=[GUARD]) is SolverResult.UNSAT
        assert fresh.statistics["conflicts"] == first_conflicts


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_assumed_solve_matches_enumeration(self, seed):
        rng = random.Random(100 + seed)
        num_vars = rng.randint(3, 7)
        clauses = []
        for _ in range(rng.randint(4, 15)):
            variables = rng.sample(range(1, num_vars + 1), min(3, num_vars))
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])
        assume = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 2)
        ]

        def satisfiable_under(assignment_filter):
            for bits in itertools.product([False, True], repeat=num_vars):
                assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
                if not assignment_filter(assignment):
                    continue
                if all(
                    any(
                        assignment[abs(l)] if l > 0 else not assignment[abs(l)]
                        for l in clause
                    )
                    for clause in clauses
                ):
                    return True
            return False

        solver = CDCLSolver()
        for clause in clauses:
            solver.add_clause(clause)
        outcome = solver.solve(assumptions=assume)
        expected = satisfiable_under(
            lambda a: all(a[abs(l)] == (l > 0) for l in assume)
        )
        assert (outcome is SolverResult.SAT) == expected
