"""Differential tests of path-routed SWAP synthesis against the exact table.

Two properties anchor the routed backend:

* **Soundness** — replaying a synthesised sequence realises exactly the
  requested permutation, and every emitted SWAP is a coupling edge.
* **Honest upper bound** — the routed count never beats the provably
  minimal ``swaps(pi)`` of the exhaustive table, checked exhaustively on
  the qx4 device and on every connected subset of up to 5 qubits of qx4
  and the sweep grid.
"""

import itertools
import random

import pytest

from repro.arch.cache import (
    cache_stats,
    clear_caches,
    shared_distance_matrix,
    shared_synthesizer,
)
from repro.arch.devices import ibm_qx4, ibm_qx5, ibm_tokyo, sweep_grid8
from repro.arch.permutations import PermutationTable, nearest_free_completion
from repro.arch.subsets import connected_subsets
from repro.arch.synthesis import (
    EXHAUSTIVE_SYNTHESIS_MAX_QUBITS,
    PermutationSynthesizer,
    RoutedSynthesizer,
    SynthesisError,
    TableSynthesizer,
    replay_swap_sequence,
    synthesizer_for,
)


def _random_permutations(size, count, seed):
    rng = random.Random(seed)
    perms = []
    for _ in range(count):
        perm = list(range(size))
        rng.shuffle(perm)
        perms.append(tuple(perm))
    return perms


class TestRoutedSoundness:
    def test_qx4_all_permutations_realized(self):
        coupling = ibm_qx4()
        routed = RoutedSynthesizer(coupling)
        edges = set(coupling.undirected_edges)
        for perm in itertools.permutations(range(coupling.num_qubits)):
            sequence = routed.swap_sequence(perm)
            assert replay_swap_sequence(coupling.num_qubits, sequence) == perm
            assert all(tuple(sorted(swap)) in edges for swap in sequence)

    @pytest.mark.parametrize("factory,samples", [(ibm_qx5, 40), (ibm_tokyo, 40)])
    def test_large_devices_random_permutations_realized(self, factory, samples):
        coupling = factory()
        routed = RoutedSynthesizer(coupling)
        edges = set(coupling.undirected_edges)
        for perm in _random_permutations(coupling.num_qubits, samples, seed=7):
            sequence = routed.swap_sequence(perm)
            assert replay_swap_sequence(coupling.num_qubits, sequence) == perm
            assert all(tuple(sorted(swap)) in edges for swap in sequence)

    def test_partial_transition_replay(self):
        coupling = ibm_qx5()
        routed = RoutedSynthesizer(coupling)
        # Three logicals mapped, thirteen physicals free.
        old = (0, 5, 9)
        new = (2, 5, 12)
        sequence = routed.transition_sequence(old, new)
        perm = replay_swap_sequence(coupling.num_qubits, sequence)
        assert tuple(perm[source] for source in old) == new

    def test_identity_is_free(self):
        coupling = ibm_tokyo()
        routed = RoutedSynthesizer(coupling)
        identity = tuple(range(coupling.num_qubits))
        assert routed.swap_sequence(identity) == []
        assert routed.swaps(identity) == 0

    def test_invalid_permutation_rejected(self):
        routed = RoutedSynthesizer(ibm_qx4())
        with pytest.raises(SynthesisError):
            routed.swap_sequence((0, 0, 1, 2, 3))
        with pytest.raises(SynthesisError):
            routed.swap_sequence((0, 1, 2))


class TestRoutedNeverBeatsExact:
    @pytest.mark.parametrize("factory", [ibm_qx4, sweep_grid8])
    def test_connected_small_subsets(self, factory):
        """On every connected ≤5-qubit subset, routed >= exact for all pi."""
        coupling = factory()
        for size in range(2, 6):
            for subset in connected_subsets(coupling, size):
                sub = coupling.subgraph(subset)
                table = PermutationTable(sub)
                routed = RoutedSynthesizer(sub, sub.distance_matrix())
                for perm in itertools.permutations(range(size)):
                    assert routed.swaps(perm) >= table.swaps(perm)

    def test_whole_qx4_device(self):
        coupling = ibm_qx4()
        table = PermutationTable(coupling)
        routed = RoutedSynthesizer(coupling)
        strictly_worse = 0
        for perm in itertools.permutations(range(coupling.num_qubits)):
            exact = table.swaps(perm)
            upper = routed.swaps(perm)
            assert upper >= exact
            strictly_worse += upper > exact
        # The bound is honest but not tight: greedy routing loses on some.
        assert strictly_worse > 0


class TestBackendSelection:
    def test_synthesizer_for_small_device(self):
        synth = synthesizer_for(ibm_qx4())
        assert isinstance(synth, TableSynthesizer)
        assert synth.optimal is True
        assert isinstance(synth, PermutationSynthesizer)

    def test_synthesizer_for_large_device(self):
        synth = synthesizer_for(ibm_qx5())
        assert isinstance(synth, RoutedSynthesizer)
        assert synth.optimal is False
        assert isinstance(synth, PermutationSynthesizer)

    def test_threshold_is_configurable(self):
        # Lowering the cap forces the routed backend even on tiny devices.
        assert isinstance(
            synthesizer_for(ibm_qx4(), max_qubits_exhaustive=3),
            RoutedSynthesizer,
        )

    def test_shared_synthesizer_memoises_and_counts(self):
        clear_caches()
        first = shared_synthesizer(ibm_qx4())
        second = shared_synthesizer(ibm_qx4())
        assert first is second
        big = shared_synthesizer(ibm_tokyo())
        assert isinstance(big, RoutedSynthesizer)
        stats = cache_stats()
        assert stats["synthesizer_table_selected"] == 1
        assert stats["synthesizer_routed_selected"] == 1
        assert stats["synthesizer_hits"] == 1

    def test_shared_distance_matrix_matches_direct(self):
        clear_caches()
        coupling = ibm_qx5()
        assert shared_distance_matrix(coupling) == coupling.distance_matrix()

    def test_table_synthesizer_matches_table(self):
        coupling = ibm_qx4()
        table = PermutationTable(coupling)
        synth = TableSynthesizer(coupling, table)
        for perm in ((1, 0, 2, 3, 4), (2, 0, 1, 3, 4)):
            assert synth.swaps(perm) == table.swaps(perm)
            assert synth.swap_sequence(perm) == table.swap_sequence(perm)
        assert synth.transition_cost((0, 1), (1, 0)) == table.transition_cost(
            (0, 1), (1, 0)
        )


class TestNearestFreeCompletion:
    def test_total_mapping_needs_no_completion(self):
        distances = ibm_qx4().distance_matrix()
        fixed = {0: 1, 1: 0, 2: 2, 3: 3, 4: 4}
        assert nearest_free_completion(fixed, 5, distances) == (1, 0, 2, 3, 4)

    def test_free_states_prefer_staying_put(self):
        distances = ibm_qx5().distance_matrix()
        completion = nearest_free_completion({0: 1, 1: 0}, 16, distances)
        assert completion is not None
        assert completion[0] == 1 and completion[1] == 0
        # Everything unconstrained stays in place (identity is nearest).
        assert all(completion[q] == q for q in range(2, 16))

    def test_unreachable_returns_none(self):
        # Two disconnected components: 0-1 and 2-3.
        from repro.arch.coupling import CouplingMap

        split = CouplingMap(4, [(0, 1), (2, 3)], name="split")
        distances = split.distance_matrix()
        assert nearest_free_completion({0: 2}, 4, distances) is None
