"""Tests for the optimizer-strategy registry, core-guided descent and model
warm starts, across the optimize / SATMapper / portfolio layers."""

import pytest

from repro.arch.devices import ibm_qx4
from repro.benchlib import benchmark_circuit
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_cnot_skeleton,
)
from repro.exact.dp_mapper import DPMapper
from repro.exact.sat_mapper import SATMapper
from repro.pipeline.portfolio import PortfolioMapper
from repro.sat.cnf import CNF
from repro.sat.optimize import (
    ObjectiveTerm,
    OptimizerRegistry,
    OptimizerStrategy,
    OptimizingSolver,
    available_optimizers,
    optimizer_descriptions,
    register_optimizer,
    resolve_optimizer_name,
)


def _toy_instance():
    cnf = CNF()
    a, b, c = cnf.new_var("a"), cnf.new_var("b"), cnf.new_var("c")
    cnf.add_clause([a, b])
    cnf.add_clause([b, c])
    objective = [ObjectiveTerm(2, a), ObjectiveTerm(3, b), ObjectiveTerm(4, c)]
    return cnf, objective


class TestRegistry:
    def test_builtins_registered(self):
        names = available_optimizers()
        assert {"linear", "binary", "core"} <= set(names)

    def test_aliases_resolve(self):
        assert resolve_optimizer_name("core-guided") == "core"
        assert resolve_optimizer_name("bisect") == "binary"
        assert resolve_optimizer_name("LINEAR") == "linear"

    def test_unknown_name_raises_value_error_with_choices(self):
        with pytest.raises(ValueError, match="core"):
            resolve_optimizer_name("simulated_annealing")

    def test_descriptions_are_one_liners(self):
        descriptions = optimizer_descriptions()
        for name in ("linear", "binary", "core"):
            assert descriptions[name]
            assert "\n" not in descriptions[name]

    def test_custom_registration_in_isolated_registry(self):
        registry = OptimizerRegistry()

        class Greedy(OptimizerStrategy):
            name = "greedy"
            description = "test strategy"

            def minimize(self, task):
                raise NotImplementedError

        registry.register("greedy", Greedy, aliases=("gr",))
        assert registry.resolve("gr") == "greedy"
        assert isinstance(registry.create("greedy"), Greedy)
        with pytest.raises(ValueError):
            registry.register("greedy", Greedy)

    def test_custom_strategy_usable_through_minimize(self):
        class Constant(OptimizerStrategy):
            name = "constant-test"
            description = "returns unknown without solving"

            def minimize(self, task):
                return task.result("unknown")

        register_optimizer("constant-test", Constant, overwrite=True)
        cnf, objective = _toy_instance()
        result = OptimizingSolver(cnf, objective).minimize(strategy="constant-test")
        assert result.status == "unknown"
        assert result.iterations == 0

    def test_minimize_rejects_unknown_strategy(self):
        cnf, objective = _toy_instance()
        with pytest.raises(ValueError):
            OptimizingSolver(cnf, objective).minimize(strategy="nope")


class TestCoreGuidedDescent:
    @pytest.mark.parametrize("strategy", ["linear", "binary", "core"])
    def test_same_minimum_on_toy_instance(self, strategy):
        cnf, objective = _toy_instance()
        result = OptimizingSolver(cnf, objective).minimize(strategy=strategy)
        assert result.is_optimal
        assert result.objective == 3  # b alone satisfies both clauses

    def test_core_counters_on_toy_instance(self):
        cnf, objective = _toy_instance()
        result = OptimizingSolver(cnf, objective).minimize(strategy="core")
        assert result.statistics["cores_found"] >= 1
        assert result.statistics["core_literals_relaxed"] >= 1
        assert 0 < result.statistics["core_lower_bound"] <= result.objective

    def test_core_respects_seeded_upper_bound(self):
        cnf, objective = _toy_instance()
        solver = OptimizingSolver(cnf, objective)
        assert solver.minimize(strategy="core", upper_bound=2).status == "unsat"
        assert solver.minimize(strategy="core", upper_bound=3).objective == 3

    def test_core_reports_hard_unsat(self):
        cnf = CNF()
        a = cnf.new_var("a")
        cnf.add_clause([a])
        cnf.add_clause([-a])
        result = OptimizingSolver(cnf, [ObjectiveTerm(1, a)]).minimize(
            strategy="core"
        )
        assert result.status == "unsat"

    def test_core_handles_empty_objective(self):
        cnf = CNF()
        a = cnf.new_var("a")
        cnf.add_clause([a])
        result = OptimizingSolver(cnf, []).minimize(strategy="core")
        assert result.is_optimal
        assert result.objective == 0


class TestInitialModelWarmStart:
    def test_requires_objective_with_model(self):
        cnf, objective = _toy_instance()
        with pytest.raises(ValueError):
            OptimizingSolver(cnf, objective).minimize(initial_model={1: True})

    @pytest.mark.parametrize("strategy", ["linear", "binary", "core"])
    def test_incumbent_is_used_and_optimum_proven(self, strategy):
        cnf, objective = _toy_instance()
        solver = OptimizingSolver(cnf, objective)
        reference = solver.minimize()
        result = solver.minimize(
            strategy=strategy,
            initial_model=reference.model,
            initial_objective=reference.objective,
        )
        assert result.is_optimal
        assert result.objective == reference.objective
        assert result.statistics["model_seeded"] == 1

    def test_linear_needs_only_the_final_probe(self):
        cnf, objective = _toy_instance()
        solver = OptimizingSolver(cnf, objective)
        reference = solver.minimize()
        result = solver.minimize(
            initial_model=reference.model,
            initial_objective=reference.objective,
        )
        # One UNSAT probe below the incumbent; no model-producing solves.
        assert result.iterations == 1
        assert result.statistics["descent_iterations"] == 0

    def test_zero_cost_incumbent_short_circuits(self):
        cnf = CNF()
        a = cnf.new_var("a")
        cnf.add_clause([a, -a])
        result = OptimizingSolver(cnf, [ObjectiveTerm(5, a)]).minimize(
            initial_model={a: False}, initial_objective=0
        )
        assert result.is_optimal
        assert result.objective == 0
        assert result.iterations == 0

    def test_incumbent_worse_than_bound_is_ignored(self):
        cnf, objective = _toy_instance()
        result = OptimizingSolver(cnf, objective).minimize(
            upper_bound=3,
            initial_model={1: True, 2: True, 3: True},
            initial_objective=9,
        )
        assert result.is_optimal
        assert result.objective == 3
        assert "model_seeded" not in result.statistics


class TestSATMapperStrategies:
    def test_optimizer_validated_at_construction(self):
        with pytest.raises(ValueError, match="available"):
            SATMapper(ibm_qx4(), optimizer="annealing")

    def test_optimizer_alias_resolves(self):
        mapper = SATMapper(ibm_qx4(), optimizer="core-guided")
        assert mapper.optimizer_strategy == "core"

    def test_legacy_optimizer_strategy_kwarg_still_works(self):
        mapper = SATMapper(ibm_qx4(), optimizer_strategy="binary")
        assert mapper.optimizer_strategy == "binary"

    @pytest.mark.parametrize("optimizer", ["binary", "core"])
    def test_paper_example_same_minimum(self, optimizer):
        circuit = paper_example_cnot_skeleton()
        result = SATMapper(ibm_qx4(), optimizer=optimizer).map(circuit)
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.optimal
        assert result.statistics["optimizer"] == optimizer

    def test_core_uses_fewer_iterations_than_linear_on_paper_example(self):
        circuit = paper_example_cnot_skeleton()
        linear = SATMapper(ibm_qx4()).map(circuit)
        core = SATMapper(ibm_qx4(), optimizer="core").map(circuit)
        assert core.added_cost == linear.added_cost
        assert (
            core.statistics["solver_iterations"]
            < linear.statistics["solver_iterations"]
        )
        assert core.statistics["cores_found"] >= 1

    @pytest.mark.parametrize("name", ["ex-1_166", "ham3_102"])
    @pytest.mark.parametrize("optimizer", ["binary", "core"])
    def test_table1_3qubit_circuits_same_minimum(self, name, optimizer):
        circuit = benchmark_circuit(name)
        reference = DPMapper(ibm_qx4()).map(circuit)
        result = SATMapper(
            ibm_qx4(), use_subsets=True, optimizer=optimizer
        ).map(circuit)
        assert result.added_cost == reference.added_cost

    def test_model_seeded_map_skips_the_descent(self):
        circuit = paper_example_cnot_skeleton()
        first = SATMapper(ibm_qx4()).map(circuit)
        seeded = SATMapper(ibm_qx4()).map(
            circuit,
            initial_model=first.schedule.mappings,
            initial_objective=first.added_cost,
        )
        assert seeded.added_cost == first.added_cost
        assert seeded.optimal
        assert seeded.statistics["solver_iterations"] == 1
        assert seeded.statistics.get("descent_iterations", 0) == 0
        assert seeded.statistics["model_seeded"] == 1

    def test_invalid_initial_model_is_ignored(self):
        circuit = paper_example_cnot_skeleton()
        bogus = [(0, 0, 0, 0)] * circuit.count_cnot()  # not injective
        result = SATMapper(ibm_qx4()).map(
            circuit, initial_model=bogus, initial_objective=0
        )
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert "model_seeded" not in result.statistics

    def test_initial_model_requires_objective(self):
        circuit = paper_example_cnot_skeleton()
        with pytest.raises(ValueError):
            SATMapper(ibm_qx4()).map(circuit, initial_model=[(0, 1, 2, 3)])

    def test_subset_mapper_ignores_initial_model(self):
        circuit = paper_example_cnot_skeleton()
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        assert not mapper.accepts_initial_model
        first = SATMapper(ibm_qx4()).map(circuit)
        result = mapper.map(
            circuit,
            initial_model=first.schedule.mappings,
            initial_objective=first.added_cost,
        )
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert "model_seeded" not in result.statistics


class TestPortfolioOptimizers:
    def test_portfolio_with_core_optimizer(self):
        circuit = paper_example_cnot_skeleton()
        result = PortfolioMapper(ibm_qx4(), optimizer="core").map(circuit)
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.statistics["portfolio_optimizer"] == "core"

    def test_portfolio_race_wins_with_either_strategy(self):
        circuit = paper_example_cnot_skeleton()
        result = PortfolioMapper(ibm_qx4(), optimizer="race").map(circuit)
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.optimal
        assert result.statistics["portfolio_race_winner"] in ("linear", "core")

    def test_portfolio_rejects_unknown_optimizer(self):
        with pytest.raises(ValueError):
            PortfolioMapper(ibm_qx4(), optimizer="warp")
