"""Unit tests for the cost model and result containers."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.exact.cost import (
    REVERSAL_COST,
    SWAP_COST,
    CostBreakdown,
    reversal_cost,
    swap_cost,
)
from repro.exact.result import MappingResult, MappingSchedule


class TestCostModel:
    def test_paper_constants(self):
        assert SWAP_COST == 7
        assert REVERSAL_COST == 4

    def test_breakdown_arithmetic(self):
        breakdown = CostBreakdown(original_gates=36, swaps=2, reversals=3)
        assert breakdown.added_cost == 2 * 7 + 3 * 4
        assert breakdown.total_cost == 36 + 26

    def test_helpers(self):
        assert swap_cost(3) == 21
        assert reversal_cost(2) == 8
        with pytest.raises(ValueError):
            swap_cost(-1)
        with pytest.raises(ValueError):
            reversal_cost(-1)


class TestMappingSchedule:
    def test_validate_accepts_valid_schedule(self):
        schedule = MappingSchedule(
            num_logical=2,
            num_physical=5,
            mappings=[(0, 1), (1, 0)],
            initial_mapping=(0, 1),
        )
        schedule.validate()
        assert schedule.final_mapping() == (1, 0)

    def test_validate_rejects_non_injective(self):
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(0, 0)], initial_mapping=(0, 0)
        )
        with pytest.raises(ValueError):
            schedule.validate()

    def test_validate_rejects_out_of_range(self):
        schedule = MappingSchedule(
            num_logical=2, num_physical=3, mappings=[(0, 5)], initial_mapping=(0, 5)
        )
        with pytest.raises(ValueError):
            schedule.validate()

    def test_validate_rejects_wrong_length(self):
        schedule = MappingSchedule(
            num_logical=3, num_physical=5, mappings=[(0, 1)], initial_mapping=(0, 1)
        )
        with pytest.raises(ValueError):
            schedule.validate()

    def test_final_mapping_without_gates(self):
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[], initial_mapping=(3, 4)
        )
        assert schedule.final_mapping() == (3, 4)


class TestMappingResult:
    def _result(self):
        original = QuantumCircuit(2)
        original.cx(0, 1)
        mapped = QuantumCircuit(5)
        mapped.cx(1, 0)
        schedule = MappingSchedule(
            num_logical=2, num_physical=5, mappings=[(1, 0)], initial_mapping=(1, 0)
        )
        return MappingResult(
            mapped_circuit=mapped,
            original_circuit=original,
            schedule=schedule,
            cost=CostBreakdown(original_gates=1, swaps=0, reversals=0),
            objective=0,
            optimal=True,
            engine="dp",
            strategy="all",
        )

    def test_properties(self):
        result = self._result()
        assert result.added_cost == 0
        assert result.total_cost == 1
        assert result.initial_mapping == (1, 0)
        assert result.final_mapping == (1, 0)

    def test_summary_mentions_engine_and_minimality(self):
        summary = self._result().summary()
        assert "dp/all" in summary
        assert "minimal" in summary
