"""Unit tests for coupling maps, devices and subset enumeration."""

import pytest

from repro.arch.coupling import CouplingError, CouplingMap
from repro.arch.devices import (
    available_architectures,
    fully_connected_architecture,
    get_architecture,
    grid_architecture,
    ibm_qx2,
    ibm_qx4,
    ibm_qx5,
    ibm_tokyo,
    linear_architecture,
    ring_architecture,
)
from repro.arch.subsets import (
    all_subsets,
    connected_subsets,
    subsets_containing_cut_vertices,
)


class TestCouplingMap:
    def test_basic_queries(self):
        qx4 = ibm_qx4()
        assert qx4.num_qubits == 5
        assert qx4.allows_cnot(1, 0)
        assert not qx4.allows_cnot(0, 1)
        assert qx4.connected(0, 1)
        assert not qx4.connected(0, 3)
        assert qx4.neighbours(2) == [0, 1, 3, 4]
        assert qx4.degree(2) == 4

    def test_invalid_edges(self):
        with pytest.raises(CouplingError):
            CouplingMap(2, [(0, 0)])
        with pytest.raises(CouplingError):
            CouplingMap(2, [(0, 5)])
        with pytest.raises(CouplingError):
            CouplingMap(0, [])

    def test_distance_and_path(self):
        qx4 = ibm_qx4()
        assert qx4.distance(0, 0) == 0
        assert qx4.distance(0, 4) == 2
        path = qx4.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 3

    def test_distance_matrix_is_symmetric(self):
        qx4 = ibm_qx4()
        matrix = qx4.distance_matrix()
        for a in range(5):
            for b in range(5):
                assert matrix[a][b] == matrix[b][a]

    def test_disconnected_distance_raises(self):
        coupling = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(CouplingError):
            coupling.distance(0, 3)
        assert not coupling.is_connected()

    def test_subgraph_reindexes(self):
        qx4 = ibm_qx4()
        sub = qx4.subgraph([2, 3, 4])
        assert sub.num_qubits == 3
        # Original edges (3,2), (3,4), (4,2) become (1,0), (1,2), (2,0).
        assert sub.allows_cnot(1, 0)
        assert sub.allows_cnot(1, 2)
        assert sub.allows_cnot(2, 0)
        assert sub.is_connected()

    def test_triangles_of_qx4(self):
        assert ibm_qx4().triangles() == [(0, 1, 2), (2, 3, 4)]

    def test_equality_and_hash(self):
        assert ibm_qx4() == ibm_qx4()
        assert hash(ibm_qx4()) == hash(ibm_qx4())
        assert ibm_qx4() != ibm_qx2()


class TestDevices:
    def test_qx4_matches_paper_coupling_map(self):
        # CM = {(p2,p1),(p3,p1),(p3,p2),(p4,p3),(p4,p5),(p5,p3)} (1-based).
        expected = {(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)}
        assert set(ibm_qx4().edges) == expected

    def test_device_sizes(self):
        assert ibm_qx2().num_qubits == 5
        assert ibm_qx5().num_qubits == 16
        assert ibm_tokyo().num_qubits == 20

    def test_all_devices_are_connected(self):
        for name in available_architectures():
            assert get_architecture(name).is_connected(), name

    def test_registry_lookup(self):
        assert get_architecture("QX4") == ibm_qx4()
        assert get_architecture("tenerife") == ibm_qx4()
        with pytest.raises(KeyError):
            get_architecture("nonexistent")

    def test_linear_architecture(self):
        line = linear_architecture(4)
        assert line.allows_cnot(0, 1)
        assert not line.allows_cnot(1, 0)
        bidirectional = linear_architecture(4, bidirectional=True)
        assert bidirectional.allows_cnot(1, 0)

    def test_ring_architecture(self):
        ring = ring_architecture(5)
        assert ring.connected(0, 4)
        with pytest.raises(ValueError):
            ring_architecture(2)

    def test_grid_architecture(self):
        grid = grid_architecture(2, 3)
        assert grid.num_qubits == 6
        assert grid.connected(0, 1)
        assert grid.connected(0, 3)
        assert not grid.connected(0, 4)

    def test_fully_connected(self):
        full = fully_connected_architecture(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert full.allows_cnot(a, b)


class TestSubsets:
    def test_all_subsets_count(self):
        assert len(all_subsets(ibm_qx4(), 4)) == 5
        with pytest.raises(ValueError):
            all_subsets(ibm_qx4(), 6)

    def test_connected_subsets_of_qx4_size4_contain_p3(self):
        # Example 9 of the paper: every connected 4-qubit subset contains
        # physical qubit p3 (index 2), reducing 5 candidates to 4.
        subsets = connected_subsets(ibm_qx4(), 4)
        assert len(subsets) == 4
        assert all(2 in subset for subset in subsets)

    def test_connected_subsets_size5_is_whole_device(self):
        assert connected_subsets(ibm_qx4(), 5) == [(0, 1, 2, 3, 4)]

    def test_connected_subsets_size1(self):
        assert len(connected_subsets(ibm_qx4(), 1)) == 5

    def test_cut_vertex_filter_matches_connected_subsets(self):
        assert subsets_containing_cut_vertices(ibm_qx4(), 4) == connected_subsets(
            ibm_qx4(), 4
        )

    def test_disconnected_subsets_are_excluded(self):
        subsets = connected_subsets(ibm_qx4(), 2)
        assert (0, 3) not in subsets
        assert (0, 1) in subsets
