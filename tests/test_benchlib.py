"""Unit tests for the benchmark library (Table-1 records and generators)."""

import pytest

from repro.benchlib.generators import (
    benchmark_circuit,
    layered_cnot_circuit,
    random_clifford_t_circuit,
    random_cnot_circuit,
)
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_CNOTS,
    paper_example_circuit,
    paper_example_cnot_skeleton,
)
from repro.benchlib.table1 import (
    TABLE1_RECORDS,
    benchmark_names,
    get_record,
    paper_average_ibm_overhead_added,
    paper_average_ibm_overhead_total,
)


class TestTable1Records:
    def test_all_25_benchmarks_present(self):
        assert len(TABLE1_RECORDS) == 25
        assert len(benchmark_names()) == 25

    def test_lookup(self):
        record = get_record("3_17_13")
        assert record.num_qubits == 3
        assert record.original_cost == 36
        assert record.paper_minimal_cost == 59
        with pytest.raises(KeyError):
            get_record("not_a_benchmark")

    def test_minimal_cost_never_exceeds_other_columns(self):
        for record in TABLE1_RECORDS:
            assert record.paper_minimal_cost <= record.paper_subset_cost
            assert record.paper_minimal_cost <= record.paper_disjoint_cost
            assert record.paper_minimal_cost <= record.paper_odd_cost
            assert record.paper_minimal_cost <= record.paper_triangle_cost
            assert record.paper_minimal_cost <= record.paper_ibm_cost

    def test_original_cost_below_minimal_cost(self):
        for record in TABLE1_RECORDS:
            assert record.original_cost <= record.paper_minimal_cost
            assert record.paper_minimal_added >= 0

    def test_spot_counts_are_consistent(self):
        for record in TABLE1_RECORDS:
            assert record.paper_odd_spots <= record.paper_disjoint_spots
            assert record.paper_disjoint_spots <= record.cnot_gates
            assert 1 <= record.paper_triangle_spots <= record.cnot_gates

    def test_paper_headline_numbers(self):
        # Section 5: "IBM's solution yields circuits that are 45% above the
        # minimum" and "104% above the minimum given by F on average".  The
        # per-row averages of Table 1 give slightly higher values (the paper
        # presumably rounds or weights differently), but both headline claims
        # -- roughly half again as many gates in total, and more than double
        # the added operations -- must follow from the recorded rows.
        assert 40.0 <= paper_average_ibm_overhead_total() <= 60.0
        assert paper_average_ibm_overhead_added() > 100.0


class TestGenerators:
    def test_benchmark_circuit_matches_record_statistics(self):
        for name in ("3_17_13", "4gt11_84", "qe_qft_5"):
            record = get_record(name)
            circuit = benchmark_circuit(name)
            assert circuit.num_qubits == record.num_qubits
            assert circuit.count_cnot() == record.cnot_gates
            assert circuit.count_single_qubit() == record.single_qubit_gates

    def test_benchmark_circuit_is_deterministic(self):
        first = benchmark_circuit("miller_11")
        second = benchmark_circuit("miller_11")
        assert first == second

    def test_all_benchmarks_generate(self):
        for name in benchmark_names():
            circuit = benchmark_circuit(name)
            record = get_record(name)
            assert circuit.count_cnot() == record.cnot_gates
            assert circuit.count_single_qubit() == record.single_qubit_gates

    def test_random_cnot_circuit(self):
        circuit = random_cnot_circuit(4, 10, seed=1)
        assert circuit.count_cnot() == 10
        assert circuit.count_single_qubit() == 0
        with pytest.raises(ValueError):
            random_cnot_circuit(1, 5)

    def test_random_clifford_t_counts(self):
        circuit = random_clifford_t_circuit(5, 12, 20, seed=3)
        assert circuit.count_single_qubit() == 12
        assert circuit.count_cnot() == 20

    def test_seeded_generation_is_reproducible(self):
        assert random_clifford_t_circuit(4, 5, 5, seed=9) == random_clifford_t_circuit(
            4, 5, 5, seed=9
        )

    def test_layered_circuit_layers_are_disjoint(self):
        from repro.circuit.layers import disjoint_qubit_layers

        circuit = layered_cnot_circuit(6, 4, seed=0)
        layers = disjoint_qubit_layers(circuit.cnot_gates())
        # Each generated layer pairs 3 disjoint couples, so the clustering
        # finds at most 4 boundaries.
        assert len(layers) <= 4


class TestPaperExample:
    def test_skeleton_matches_gate_list(self):
        skeleton = paper_example_cnot_skeleton()
        assert skeleton.cnot_pairs() == PAPER_EXAMPLE_CNOTS
        assert skeleton.num_qubits == 4

    def test_full_circuit_has_eight_gates(self):
        circuit = paper_example_circuit()
        assert circuit.num_gates == 8
        assert circuit.count_cnot() == 5
        assert circuit.count_single_qubit() == 3

    def test_cnot_skeleton_matches_full_circuit(self):
        assert (
            paper_example_circuit().cnot_pairs()
            == paper_example_cnot_skeleton().cnot_pairs()
        )
