"""Tests for solver backend selection and the flat-core internals.

Covers the ``REPRO_SOLVER_BACKEND`` selection machinery (valid and invalid
values, graceful fallback with a truthful provenance note), the batched
``_ensure_var`` growth of the rewritten core, and the indexed VSIDS order
heap — which must compute the exact argmax the old linear scan computed
under arbitrary bump/assign/unassign churn, rescales included.
"""

import random

import pytest

from repro.sat._backend import (
    available_backends,
    backend_module,
    backend_provenance,
    requested_backend,
    select_backend,
)
from repro.sat._solver_core import CDCLSolver as PureCDCLSolver
from repro.sat.solver import (
    CDCLSolver,
    solver_backend,
    solver_backend_provenance,
)


class TestBackendSelection:
    def test_pure_is_always_available(self):
        assert "pure" in available_backends()
        assert backend_module("pure").CDCLSolver is PureCDCLSolver

    def test_select_pure_explicitly(self):
        backend = select_backend("pure")
        assert backend.name == "pure"
        assert backend.requested == "pure"
        assert backend.note is None
        assert backend.module.CDCLSolver is PureCDCLSolver

    def test_select_compiled_or_truthful_fallback(self):
        backend = select_backend("compiled")
        if "compiled" in available_backends():
            assert backend.name == "compiled"
            assert backend.note is None
            assert backend.module.__file__.endswith((".so", ".pyd", ".dylib"))
        else:
            assert backend.name == "pure"
            assert backend.note is not None
            assert "using pure" in backend.note

    def test_select_auto_prefers_compiled_when_built(self):
        backend = select_backend("auto")
        if "compiled" in available_backends():
            assert backend.name == "compiled"
        else:
            assert backend.name == "pure"
            assert backend.note is not None  # records why compiled was skipped

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            select_backend("turbo")
        with pytest.raises(ValueError):
            backend_module("turbo")

    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_BACKEND", raising=False)
        assert requested_backend() == "auto"
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", " PURE ")
        assert requested_backend() == "pure"
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "")
        assert requested_backend() == "auto"

    def test_invalid_env_value_warns_and_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "turbo")
        with pytest.warns(UserWarning, match="REPRO_SOLVER_BACKEND"):
            assert requested_backend() == "auto"

    def test_provenance_shape(self):
        provenance = backend_provenance()
        assert provenance["solver_backend"] in ("pure", "compiled")
        assert provenance["solver_backend_requested"] in (
            "auto", "pure", "compiled"
        )
        if provenance["solver_backend"] == "pure" and "compiled" not in (
            available_backends()
        ):
            # Running interpreted without the extension: the note says why.
            if provenance["solver_backend_requested"] != "pure":
                assert "solver_backend_note" in provenance

    def test_solver_module_reexports(self):
        assert solver_backend() in available_backends()
        assert CDCLSolver is backend_module(solver_backend()).CDCLSolver
        assert solver_backend_provenance() == backend_provenance()


class TestEnsureVarBatchGrowth:
    def test_single_clause_grows_all_arrays_at_once(self):
        solver = PureCDCLSolver()
        solver.add_clause([500, -1200])
        assert solver.num_vars == 1200
        assert len(solver._assign) == 1201
        assert len(solver._level) == 1201
        assert len(solver._reason) == 1201
        assert len(solver._activity) == 1201
        assert len(solver._phase) == 1201
        assert len(solver._seen) == 1201
        assert len(solver._watches) == 2 * 1200 + 2
        # Every variable sits in the order heap exactly once, and the
        # position index is consistent.
        assert sorted(solver._heap) == list(range(1, 1201))
        for idx, var in enumerate(solver._heap):
            assert solver._heap_pos[var] == idx

    def test_incremental_growth_keeps_heap_consistent(self):
        solver = PureCDCLSolver()
        solver.add_clause([1, -2])
        solver._bump_var(2)  # non-zero activity before more vars arrive
        solver.add_clause([3, -40])
        assert solver.num_vars == 40
        assert sorted(solver._heap) == list(range(1, 41))
        for idx, var in enumerate(solver._heap):
            assert solver._heap_pos[var] == idx
        # The bumped variable is still the heap maximum.
        assert solver._pick_branch_variable() == 2

    def test_growth_is_idempotent(self):
        solver = PureCDCLSolver()
        solver.add_clause([7, -3])
        before = len(solver._assign)
        solver._ensure_var(5)  # already covered
        assert len(solver._assign) == before


class TestOrderHeapMatchesLinearScan:
    """The indexed heap must be decision-identical to the old linear scan."""

    @staticmethod
    def _linear_argmax(solver, num_vars):
        best_var = None
        best_act = -1.0
        for var in range(1, num_vars + 1):
            if solver._assign[var] is None and solver._activity[var] > best_act:
                best_act = solver._activity[var]
                best_var = var
        return best_var

    @pytest.mark.parametrize("seed", range(5))
    def test_random_churn(self, seed):
        rng = random.Random(42 + seed)
        num_vars = 40
        solver = PureCDCLSolver()
        solver._ensure_var(num_vars)
        assigned = []
        for step in range(1500):
            op = rng.random()
            if op < 0.55:
                solver._bump_var(rng.randint(1, num_vars))
            elif op < 0.80:
                expected = self._linear_argmax(solver, num_vars)
                picked = solver._pick_branch_variable()
                assert picked == expected
                if picked is not None:
                    solver._assign[picked] = True
                    assigned.append(picked)
            elif assigned:
                var = assigned.pop(rng.randrange(len(assigned)))
                solver._assign[var] = None
                if solver._heap_pos[var] < 0:
                    solver._heap_insert(var)
            if step % 300 == 299:
                # Accelerate toward an activity rescale (1e100 overflow
                # guard) so the rebuild path is exercised too.
                solver._var_inc *= 1e20
        # Force a rescale and confirm the ordering survives it.
        solver._var_inc = 2e100
        solver._bump_var(1)
        assert solver._activity[1] < 1e100  # rescale happened
        while assigned:
            var = assigned.pop()
            solver._assign[var] = None
            if solver._heap_pos[var] < 0:
                solver._heap_insert(var)
        drained = []
        while True:
            expected = self._linear_argmax(solver, num_vars)
            picked = solver._pick_branch_variable()
            assert picked == expected
            if picked is None:
                break
            solver._assign[picked] = True
            drained.append(picked)
        assert sorted(drained) == list(range(1, num_vars + 1))

    def test_tie_break_is_lowest_variable(self):
        solver = PureCDCLSolver()
        solver._ensure_var(10)
        for var in (3, 7, 9):
            solver._bump_var(var)  # equal activities
        assert solver._pick_branch_variable() == 3
        solver._assign[3] = True
        assert solver._pick_branch_variable() == 7
