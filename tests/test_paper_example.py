"""Reproduction of the paper's worked example (Experiment E1).

Example 7 / Fig. 5 of the paper: mapping the Fig. 1 circuit to IBM QX4
requires a minimal added cost of F = 4 (one reversed CNOT, no SWAP).
"""

import pytest

from repro.arch.devices import ibm_qx4
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_circuit,
    paper_example_cnot_skeleton,
)
from repro.exact.dp_mapper import DPMapper
from repro.exact.sat_mapper import SATMapper
from repro.exact.strategies import (
    DisjointQubitsStrategy,
    OddGatesStrategy,
    QubitTriangleStrategy,
)
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result


class TestPaperExampleMinimalCost:
    def test_dp_engine_reaches_f_equals_4(self):
        result = DPMapper(ibm_qx4()).map(paper_example_circuit())
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.cost.reversals == 1
        assert result.cost.swaps == 0
        assert result.optimal
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)

    def test_total_cost_is_original_plus_four(self):
        circuit = paper_example_circuit()
        result = DPMapper(ibm_qx4()).map(circuit)
        assert result.total_cost == circuit.gate_cost() + PAPER_EXAMPLE_MINIMAL_COST

    def test_sat_engine_agrees_with_dp(self):
        # The SAT engine with the Section-4.1 subset improvement finds the
        # same minimum (the paper observes the improvement preserves
        # minimality on all evaluated benchmarks).
        result = SATMapper(ibm_qx4(), use_subsets=True).map(
            paper_example_cnot_skeleton()
        )
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result_is_equivalent(result)

    @pytest.mark.parametrize(
        "strategy",
        [DisjointQubitsStrategy(), OddGatesStrategy(), QubitTriangleStrategy()],
    )
    def test_restricted_strategies_do_not_harm_minimality_here(self, strategy):
        # Example 10: for this circuit all three strategies still allow the
        # minimal solution.
        result = DPMapper(ibm_qx4(), strategy=strategy).map(paper_example_circuit())
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result_is_equivalent(result)

    def test_strategy_spot_counts_match_example_10(self):
        gates = paper_example_cnot_skeleton().cnot_gates()
        qx4 = ibm_qx4()
        assert len(DisjointQubitsStrategy().spots(gates, qx4)) == 4
        assert len(OddGatesStrategy().spots(gates, qx4)) == 3
        assert len(QubitTriangleStrategy().spots(gates, qx4)) == 2
