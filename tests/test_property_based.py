"""Property-based tests (hypothesis) for the core data structures and invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.arch.devices import ibm_qx4, linear_architecture
from repro.arch.permutations import (
    PermutationTable,
    apply_permutation,
    compose_permutations,
    identity_permutation,
    invert_permutation,
    swap_transposition,
)
from repro.benchlib.generators import random_clifford_t_circuit
from repro.circuit.qasm import parse_qasm, to_qasm
from repro.exact.dp_mapper import DPMapper
from repro.heuristic.stochastic_swap import StochasticSwapMapper
from repro.sat.cardinality import exactly_one
from repro.sat.cnf import CNF
from repro.sat.pb import encode_pb_leq
from repro.sat.solver import CDCLSolver, SolverResult
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result

QX4_TABLE = PermutationTable(ibm_qx4())


# ---------------------------------------------------------------------------
# Permutation algebra
# ---------------------------------------------------------------------------
@given(st.permutations(list(range(5))))
@settings(max_examples=40, deadline=None)
def test_inverse_composes_to_identity(perm):
    perm = tuple(perm)
    assert compose_permutations(perm, invert_permutation(perm)) == identity_permutation(5)
    assert compose_permutations(invert_permutation(perm), perm) == identity_permutation(5)


@given(st.permutations(list(range(5))), st.permutations(list(range(5))))
@settings(max_examples=40, deadline=None)
def test_apply_permutation_respects_composition(first, second):
    first, second = tuple(first), tuple(second)
    mapping = (0, 1, 2, 3, 4)
    composed = compose_permutations(first, second)
    step_by_step = apply_permutation(second, apply_permutation(first, mapping))
    assert apply_permutation(composed, mapping) == step_by_step


@given(st.permutations(list(range(5))))
@settings(max_examples=30, deadline=None)
def test_swap_table_sequences_realise_their_permutation(perm):
    perm = tuple(perm)
    sequence = QX4_TABLE.swap_sequence(perm)
    realised = identity_permutation(5)
    for edge in sequence:
        realised = compose_permutations(realised, swap_transposition(5, edge))
    assert realised == perm
    assert len(sequence) == QX4_TABLE.swaps(perm)


@given(st.permutations(list(range(5))), st.permutations(list(range(5))))
@settings(max_examples=30, deadline=None)
def test_swap_counts_satisfy_triangle_inequality(first, second):
    first, second = tuple(first), tuple(second)
    combined = compose_permutations(first, second)
    assert QX4_TABLE.swaps(combined) <= QX4_TABLE.swaps(first) + QX4_TABLE.swaps(second)


# ---------------------------------------------------------------------------
# SAT substrate
# ---------------------------------------------------------------------------
@st.composite
def small_cnf(draw):
    num_vars = draw(st.integers(min_value=3, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=25))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1, max_value=3))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=size, max_size=size))
        clauses.append([v if s else -v for v, s in zip(variables, signs)])
    return num_vars, clauses


@given(small_cnf())
@settings(max_examples=40, deadline=None)
def test_cdcl_matches_brute_force(problem):
    num_vars, clauses = problem
    solver = CDCLSolver()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()

    satisfiable = False
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = dict(zip(range(1, num_vars + 1), bits))
        if all(
            any(assignment[abs(l)] if l > 0 else not assignment[abs(l)] for l in clause)
            for clause in clauses
        ):
            satisfiable = True
            break
    assert (result is SolverResult.SAT) == satisfiable
    if result is SolverResult.SAT:
        model = solver.model()
        assert all(
            any(model[abs(l)] if l > 0 else not model[abs(l)] for l in clause)
            for clause in clauses
        )


@given(
    st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_pb_encoding_never_admits_overweight_models(weights, bound):
    cnf = CNF()
    literals = [cnf.new_var() for _ in weights]
    encode_pb_leq(cnf, list(zip(weights, literals)), bound)
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    # Try to push literals true greedily; whatever model comes out must obey the bound.
    for literal in literals:
        probe = CDCLSolver()
        probe.add_cnf(cnf)
        probe.add_clause([literal])
        if probe.solve() is SolverResult.SAT:
            model = probe.model()
            total = sum(w for w, lit in zip(weights, literals) if model[lit])
            assert total <= bound


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_exactly_one_models_have_exactly_one(count):
    cnf = CNF()
    literals = [cnf.new_var() for _ in range(count)]
    exactly_one(cnf, literals)
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assert solver.solve() is SolverResult.SAT
    model = solver.model()
    assert sum(1 for lit in literals if model[lit]) == 1


# ---------------------------------------------------------------------------
# Circuit round trips and end-to-end mapping invariants
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_qasm_round_trip_preserves_gates(num_qubits, num_single, num_cnots, seed):
    circuit = random_clifford_t_circuit(num_qubits, num_single, num_cnots, seed=seed)
    parsed = parse_qasm(to_qasm(circuit))
    assert parsed.num_qubits == circuit.num_qubits
    assert [g.name for g in parsed] == [g.name for g in circuit]
    assert [g.qubits for g in parsed] == [g.qubits for g in circuit]


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_dp_mapping_is_always_compliant_and_equivalent(num_qubits, num_cnots, seed):
    circuit = random_clifford_t_circuit(num_qubits, 2, num_cnots, seed=seed)
    result = DPMapper(ibm_qx4()).map(circuit)
    assert verify_result(result, ibm_qx4()).compliant
    assert result_is_equivalent(result)
    # The reported objective always matches the reconstructed added cost.
    assert result.objective == result.added_cost


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=10, deadline=None)
def test_heuristic_never_beats_the_exact_minimum(num_qubits, num_cnots, seed):
    circuit = random_clifford_t_circuit(num_qubits, 1, num_cnots, seed=seed)
    exact = DPMapper(ibm_qx4()).map(circuit)
    heuristic = StochasticSwapMapper(ibm_qx4(), trials=2, seed=seed).map(circuit)
    assert heuristic.added_cost >= exact.added_cost
    assert verify_result(heuristic, ibm_qx4()).compliant


@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=8, deadline=None)
def test_dp_minimum_is_invariant_under_device_choice_of_line(num_qubits, num_cnots, seed):
    # Mapping to a bidirectional line never needs direction fixes, so the
    # added cost is a multiple of the SWAP cost.
    circuit = random_clifford_t_circuit(num_qubits, 0, num_cnots, seed=seed)
    line = linear_architecture(4, bidirectional=True)
    result = DPMapper(line).map(circuit)
    assert result.added_cost % 7 == 0
