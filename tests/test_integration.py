"""Integration tests across the whole tool flow (parse -> map -> verify -> emit)."""

import pytest

from repro import (
    DPMapper,
    QuantumCircuit,
    SATMapper,
    StochasticSwapMapper,
    benchmark_circuit,
    get_strategy,
    ibm_qx4,
    parse_qasm,
    to_qasm,
    verify_result,
)
from repro.benchlib.table1 import get_record
from repro.sim.equivalence import result_is_equivalent


class TestQasmToMappedQasm:
    QASM = """
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[4];
    creg c[4];
    h q[0];
    cx q[0], q[1];
    cx q[1], q[2];
    t q[2];
    cx q[2], q[3];
    cx q[0], q[3];
    measure q -> c;
    """

    def test_full_flow_with_dp_engine(self):
        circuit = parse_qasm(self.QASM)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)
        # The mapped circuit re-parses cleanly.
        round_trip = parse_qasm(to_qasm(result.mapped_circuit))
        assert round_trip.count_cnot() == result.mapped_circuit.count_cnot()
        # Measurements are preserved and remapped to physical qubits.
        assert sum(1 for g in result.mapped_circuit if g.name == "measure") == 4

    def test_all_engines_agree_on_compliance(self):
        circuit = parse_qasm(self.QASM)
        engines = [
            DPMapper(ibm_qx4()),
            DPMapper(ibm_qx4(), strategy=get_strategy("odd")),
            StochasticSwapMapper(ibm_qx4(), trials=2, seed=0),
        ]
        costs = []
        for engine in engines:
            result = engine.map(circuit)
            assert verify_result(result, ibm_qx4()).compliant
            assert result_is_equivalent(result)
            costs.append(result.added_cost)
        # The unrestricted exact engine is never worse than the others.
        assert costs[0] == min(costs)


class TestBenchmarkFlow:
    @pytest.mark.parametrize("name", ["ex-1_166", "4gt11_84", "4mod5-v0_20"])
    def test_exact_mapping_of_small_benchmarks(self, name):
        record = get_record(name)
        circuit = benchmark_circuit(name)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert verify_result(result, ibm_qx4()).compliant
        # Total cost = original cost + added cost, as in Table 1.
        assert result.total_cost == record.original_cost + result.added_cost

    def test_heuristic_overhead_is_nonnegative_on_benchmark(self):
        circuit = benchmark_circuit("4mod5-v0_20")
        exact = DPMapper(ibm_qx4()).map(circuit)
        heuristic = StochasticSwapMapper(ibm_qx4(), trials=3, seed=0).map(circuit)
        assert heuristic.added_cost >= exact.added_cost

    def test_strategy_chain_on_benchmark(self):
        circuit = benchmark_circuit("ex-1_166")
        qx4 = ibm_qx4()
        minimal = DPMapper(qx4).map(circuit).added_cost
        for strategy_name in ("disjoint", "odd", "triangle"):
            restricted = DPMapper(qx4, strategy=get_strategy(strategy_name)).map(circuit)
            assert restricted.added_cost >= minimal
            assert verify_result(restricted, qx4).compliant


class TestSATEngineIntegration:
    def test_sat_and_dp_agree_on_tiny_benchmark_prefix(self):
        # Build a short prefix of a benchmark so the pure-Python SAT engine
        # stays fast, then check both exact engines agree on the minimum.
        full = benchmark_circuit("ex-1_166")
        prefix = QuantumCircuit(full.num_qubits)
        cnots = 0
        for gate in full.gates:
            if gate.is_cnot:
                cnots += 1
                if cnots > 4:
                    break
            prefix.append(gate)
        sat_result = SATMapper(ibm_qx4(), use_subsets=True).map(prefix)
        dp_result = DPMapper(ibm_qx4()).map(prefix)
        assert sat_result.added_cost == dp_result.added_cost
        assert result_is_equivalent(sat_result)
