"""Tests for the mapper registry, the batch pipeline and the shared caches."""

import pytest

from repro.arch.devices import ibm_qx4
from repro.benchlib.generators import random_clifford_t_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.exact.sat_mapper import SATMapper
from repro.exact.strategies import AllGatesStrategy
from repro.heuristic.sabre_lite import SabreLiteMapper
from repro.pipeline.cache import (
    cache_stats,
    clear_caches,
    shared_connected_subsets,
    shared_permutation_table,
)
from repro.pipeline.pipeline import BatchItem, MappingPipeline
from repro.pipeline.registry import (
    Mapper,
    MapperRegistry,
    available_mappers,
    get_mapper,
    resolve_mapper_name,
)


def _zero_cost_circuit():
    """Three CNOTs mappable with zero added cost on the first QX4 3-subset."""
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    circuit.cx(1, 2)
    return circuit


def _nonzero_cost_circuit():
    """A bidirectional CNOT pair: every mapping pays at least one reversal."""
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 0)
    circuit.cx(1, 2)
    return circuit


class TestRegistry:
    def test_builtin_engines_registered(self):
        names = available_mappers()
        for expected in ("sat", "dp", "stochastic", "sabre", "portfolio"):
            assert expected in names

    def test_get_mapper_builds_configured_instances(self):
        mapper = get_mapper("sat", ibm_qx4(), strategy="odd", use_subsets=True)
        assert isinstance(mapper, SATMapper)
        assert mapper.use_subsets
        assert mapper.strategy.name == "odd"

    def test_strategy_instances_pass_through(self):
        mapper = get_mapper("dp", ibm_qx4(), strategy=AllGatesStrategy())
        assert isinstance(mapper, DPMapper)
        assert mapper.strategy.guarantees_minimality

    def test_aliases_resolve(self):
        assert resolve_mapper_name("sabre_lite") == "sabre"
        assert isinstance(get_mapper("SABRE_LITE", ibm_qx4()), SabreLiteMapper)

    def test_unknown_engine_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            get_mapper("made_up_engine", ibm_qx4())

    def test_custom_registration_and_protocol(self):
        registry = MapperRegistry()

        class EchoMapper:
            def __init__(self, coupling):
                self.coupling = coupling

            def map(self, circuit):
                return DPMapper(self.coupling).map(circuit)

        registry.register("echo", EchoMapper, aliases=("e",))
        mapper = registry.create("e", ibm_qx4())
        assert isinstance(mapper, Mapper)
        assert "echo" in registry
        with pytest.raises(ValueError):
            registry.register("echo", EchoMapper)

    def test_mappers_satisfy_protocol(self):
        for name in ("sat", "dp", "stochastic", "sabre", "portfolio"):
            assert isinstance(get_mapper(name, ibm_qx4()), Mapper)


class TestCaches:
    def test_permutation_table_is_shared(self):
        clear_caches()
        first = shared_permutation_table(ibm_qx4())
        second = shared_permutation_table(ibm_qx4())
        assert first is second
        stats = cache_stats()
        assert stats["permutation_table_hits"] == 1
        assert stats["permutation_table_misses"] == 1

    def test_subset_lists_are_cached_but_copied(self):
        clear_caches()
        first = shared_connected_subsets(ibm_qx4(), 3)
        second = shared_connected_subsets(ibm_qx4(), 3)
        assert first == second
        assert first is not second  # callers may mutate their copy
        stats = cache_stats()
        assert stats["connected_subsets_hits"] == 1

    def test_guard_checked_before_cache(self):
        clear_caches()
        shared_permutation_table(ibm_qx4())
        with pytest.raises(ValueError):
            shared_permutation_table(ibm_qx4(), max_qubits_exhaustive=3)

    def test_structurally_equal_subgraphs_share_one_table(self):
        clear_caches()
        qx4 = ibm_qx4()
        first = shared_permutation_table(qx4.subgraph((0, 1, 2), name="a"))
        second = shared_permutation_table(qx4.subgraph((0, 1, 2), name="b"))
        assert first is second


class TestMappingPipelineSingle:
    def test_plain_engine_delegation(self):
        pipeline = MappingPipeline(ibm_qx4(), engine="dp")
        result = pipeline.map(_nonzero_cost_circuit())
        assert result.engine == "dp"
        assert result.optimal

    def test_parallel_subsets_match_sequential(self):
        circuit = random_clifford_t_circuit(3, 4, 6, seed=3)
        options = {"use_subsets": True}
        sequential = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        parallel = MappingPipeline(
            ibm_qx4(), engine="sat", engine_options=options, workers=4
        ).map(circuit)
        assert parallel.added_cost == sequential.added_cost
        assert parallel.objective == sequential.objective
        assert parallel.statistics["subsets_total"] == sequential.statistics["subsets_total"]

    def test_parallel_zero_cost_early_exit(self):
        from repro.arch.devices import ibm_qx5

        # All CNOTs share control 0, so logical 0 on QX5's physical qubit 1
        # (edges 1->0 and 1->2) realises the circuit with zero added cost on
        # the very first connected 3-subset.  QX5 has dozens of such subsets;
        # with two workers, most are still queued when the zero-cost
        # incumbent arrives and must be cancelled instead of solved.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        circuit.cx(0, 1)
        pipeline = MappingPipeline(
            ibm_qx5(), engine="sat", engine_options={"use_subsets": True}, workers=2
        )
        result = pipeline.map(circuit)
        assert result.added_cost == 0
        total = result.statistics["subsets_total"]
        assert total > 10
        assert result.statistics["subsets_tried"] < total
        assert result.statistics["subsets_skipped"] > 0

    def test_process_executor_maps_correctly(self):
        pipeline = MappingPipeline(
            ibm_qx4(), engine="dp", workers=2, executor="process"
        )
        items = pipeline.map_many(
            [_zero_cost_circuit(), _nonzero_cost_circuit()], workers=2
        )
        assert [item.ok for item in items] == [True, True]
        assert items[0].result.added_cost == 0
        assert items[1].result.added_cost > 0

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            MappingPipeline(ibm_qx4(), executor="fiber")

    def test_rejects_unknown_engine_eagerly(self):
        with pytest.raises(KeyError):
            MappingPipeline(ibm_qx4(), engine="made_up")


class TestMapMany:
    def _circuits(self):
        return [
            random_clifford_t_circuit(3, 3, 5, seed=seed) for seed in range(4)
        ]

    def test_results_preserve_input_order(self):
        pipeline = MappingPipeline(ibm_qx4(), engine="dp", workers=3)
        items = pipeline.map_many(self._circuits())
        assert [item.index for item in items] == [0, 1, 2, 3]
        assert all(isinstance(item, BatchItem) and item.ok for item in items)

    def test_parallel_matches_sequential(self):
        circuits = self._circuits()
        pipeline = MappingPipeline(ibm_qx4(), engine="dp")
        sequential = pipeline.map_many(circuits, workers=1)
        parallel = pipeline.map_many(circuits, workers=4)
        assert [item.result.added_cost for item in sequential] == [
            item.result.added_cost for item in parallel
        ]

    def test_sat_batch_matches_sequential_sat_mapper(self):
        circuits = self._circuits()
        options = {"use_subsets": True}
        expected = [
            SATMapper(ibm_qx4(), use_subsets=True).map(circuit).added_cost
            for circuit in circuits
        ]
        items = MappingPipeline(
            ibm_qx4(), engine="sat", engine_options=options, workers=4
        ).map_many(circuits)
        assert [item.result.added_cost for item in items] == expected

    def test_structured_failure_does_not_poison_batch(self):
        too_big = QuantumCircuit(9, name="too_big")
        too_big.cx(0, 8)
        circuits = [self._circuits()[0], too_big, self._circuits()[1]]
        items = MappingPipeline(ibm_qx4(), engine="dp", workers=3).map_many(circuits)
        assert items[0].ok and items[2].ok
        failed = items[1]
        assert not failed.ok
        assert failed.error_type == "ValueError"
        assert "logical qubits" in failed.error
        assert failed.name == "too_big"

    def test_empty_batch(self):
        assert MappingPipeline(ibm_qx4(), engine="dp").map_many([]) == []


class TestSATMapperSatellites:
    def test_early_exit_on_zero_objective_subset(self):
        result = SATMapper(ibm_qx4(), use_subsets=True).map(_zero_cost_circuit())
        assert result.added_cost == 0
        # The first subset already yields objective 0; the remaining
        # connected 3-subsets of QX4 must not be solved.
        assert result.statistics["subsets_tried"] < result.statistics["subsets_total"]
        assert result.statistics["subsets_skipped"] > 0

    def test_budget_exhaustion_skips_remaining_subsets(self, monkeypatch):
        mapper = SATMapper(ibm_qx4(), use_subsets=True, time_limit=60.0)
        remaining = iter([60.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        monkeypatch.setattr(mapper, "_remaining_time", lambda start: next(remaining))
        result = mapper.map(_nonzero_cost_circuit())
        assert result.statistics["budget_exhausted"]
        assert result.statistics["subsets_tried"] == 1
        assert result.statistics["subsets_skipped"] > 0
        assert not result.optimal

    def test_budget_exhausted_before_any_solution_raises(self):
        from repro.exact.sat_mapper import SATMapperError

        mapper = SATMapper(ibm_qx4(), use_subsets=True, time_limit=0.0)
        with pytest.raises(SATMapperError, match="budget"):
            mapper.map(_nonzero_cost_circuit())

    def test_incumbent_bound_tightens_later_subsets(self):
        # With subsets enabled the incumbent's objective caps every later
        # subset search; the result must still match the DP oracle.
        circuit = random_clifford_t_circuit(3, 4, 7, seed=11)
        sat = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        dp = DPMapper(ibm_qx4()).map(circuit)
        assert sat.added_cost == dp.added_cost
