"""Chaos and fault-tolerance tests: injection, durability, cancellation.

Unit coverage for :mod:`repro.faults` (deterministic, replayable fault
schedules), the result store's busy-retry/circuit-breaker policy, and the
durable :class:`~repro.service.store.JobJournal`; service-level coverage
for cooperative cancellation and server-enforced deadlines; and end-to-end
chaos scenarios against a real multi-process supervisor — ``kill -9`` on a
worker mid-backlog with at-least-once redelivery under the original public
job id, and a SIGTERM drain racing a worker crash.

The end-to-end invariant throughout: **every accepted job reaches a
terminal state** — a result, or a structured error — never a silent
disappearance.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro import faults
from repro.arch.devices import ibm_qx4
from repro.benchlib.generators import (
    random_clifford_t_circuit,
    random_cnot_circuit,
)
from repro.circuit.qasm.writer import to_qasm
from repro.exact.dp_mapper import DPMapper
from repro.server import wire
from repro.server.supervisor import Supervisor
from repro.service.errors import (
    DeadlineExceededError,
    JobCancelledError,
    StoreError,
)
from repro.service.fingerprint import job_fingerprint
from repro.service.service import FAILED, MappingService
from repro.service.store import (
    BREAKER_THRESHOLD,
    JobJournal,
    ResultStore,
)


@pytest.fixture(autouse=True)
def _always_disarm():
    """No test leaks an armed fault into the next one (or the suite)."""
    faults.disarm()
    yield
    faults.disarm()


def run(coroutine):
    return asyncio.run(coroutine)


def _result(seed=1):
    circuit = random_clifford_t_circuit(3, 4, 6, seed=seed)
    return DPMapper(ibm_qx4()).map(circuit)


def _fingerprint(result):
    return job_fingerprint(result.original_circuit, ibm_qx4(), "dp", {})


async def _request(port, method, target, body=None, timeout=120.0, retries=0):
    status, _headers, payload = await wire.http_request(
        "127.0.0.1", port, method, target, body=body, timeout=timeout,
        retries=retries,
    )
    return status, json.loads(payload)


def _submit_body(qasm, name, engine="dp", arch="ibm_qx4", options=None):
    payload = {
        "qasm": qasm,
        "arch": arch,
        "engine": engine,
        "circuit_name": name,
    }
    if options:
        payload["options"] = options
    return json.dumps(
        {"type": "submit-request", "version": 1, "payload": payload}
    ).encode()


#: A circuit the exact SAT mapper chews on for tens of seconds on the
#: QX4 — encoding is cheap and nearly all the time is interruptible solver
#: work, which is what cancellation/deadline tests need (they interrupt it
#: long before it finishes).
def _hard_qasm(seed=11):
    return to_qasm(random_cnot_circuit(5, 24, seed=seed, locality=0.7))


class TestFaultInjection:
    def test_disarmed_is_a_noop(self):
        assert faults.ARMED is False
        assert faults.fire("store.put") is None
        assert faults.fired_counts() == {}

    def test_fail_mode_raises_at_the_point(self):
        faults.arm("store.put:fail")
        assert faults.ARMED is True
        with pytest.raises(faults.FaultInjectedError) as info:
            faults.fire("store.put")
        assert info.value.point == "store.put"
        # An armed fault is point-scoped: other points stay clean.
        assert faults.fire("store.get") is None

    def test_injected_error_is_a_connection_error(self):
        # Retry paths guarding process boundaries must treat an injected
        # failure exactly like a real one.
        assert issubclass(faults.FaultInjectedError, ConnectionError)

    def test_drop_and_corrupt_are_returned_to_the_call_site(self):
        faults.arm("wire.read:drop,wire.write:corrupt")
        assert faults.fire("wire.read") == "drop"
        assert faults.fire("wire.write") == "corrupt"

    def test_delay_mode_stalls(self):
        faults.arm("solver.step:delay")
        started = time.perf_counter()
        assert faults.fire("solver.step") == "delay"
        assert time.perf_counter() - started >= faults.DELAY_SECONDS * 0.5

    def test_probabilistic_schedule_is_replayable(self):
        def schedule():
            faults.arm("store.get:drop:0.5:42")
            return [faults.active("store.get") for _ in range(40)]

        first, second = schedule(), schedule()
        assert first == second
        assert "drop" in first and None in first  # genuinely probabilistic

    def test_prefix_arms_every_matching_point(self):
        faults.arm("store.*:delay")
        for point in ("store.put", "store.get", "store.journal"):
            assert faults.active(point) == "delay"
        assert faults.active("wire.read") is None

    def test_bad_specs_fail_loudly(self):
        for spec in (
            "store.put",                # missing mode
            "store.put:explode",        # unknown mode
            "no.such.point:fail",       # unknown point
            "bogus.*:fail",             # prefix matching nothing
            "store.put:fail:1.5",       # probability outside [0, 1]
        ):
            with pytest.raises(ValueError):
                faults.arm(spec)

    def test_mangle_flips_exactly_one_byte(self):
        faults.arm("wire.read:corrupt")
        data = b"0123456789"
        mangled = faults.mangle("wire.read", data)
        assert len(mangled) == len(data)
        assert sum(a != b for a, b in zip(data, mangled)) == 1

    def test_fired_counts_feed_the_ledger(self):
        faults.arm("store.put:delay")
        faults.fire("store.put")
        faults.fire("store.put")
        assert faults.fired_counts() == {"store.put": 2}

    def test_environment_arming(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "wire.write:drop:0.25:9")
        faults._arm_from_environment()
        assert faults.ARMED is True
        modes = {faults.active("wire.write") for _ in range(40)}
        assert modes == {"drop", None}


class TestStoreBreaker:
    def test_put_failure_keeps_memory_tier_and_raises(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        result = _result()
        fingerprint = _fingerprint(result)
        faults.arm("store.put:fail")
        with pytest.raises(StoreError):
            store.put(fingerprint, result)
        # Degraded mode's promise: same-process lookups keep hitting.
        assert store.get(fingerprint) is result
        faults.disarm()
        stats = store.stats()
        assert stats["disk_errors"] >= 1
        assert stats["busy_retries"] >= 1  # injected faults retry first

    def test_breaker_trips_after_consecutive_failures(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        faults.arm("store.put:fail")
        for seed in range(BREAKER_THRESHOLD):
            with pytest.raises(StoreError):
                store.put(_fingerprint(_result(seed + 10)), _result(seed + 10))
        assert store.degraded is True
        assert store.stats()["breaker_trips"] == 1
        # Breaker open: puts bypass the (still-faulty) disk entirely and
        # succeed memory-only instead of stalling every job on retries.
        quiet = _result(99)
        store.put(_fingerprint(quiet), quiet)
        assert store.get(_fingerprint(quiet)) is quiet
        assert store.stats()["degraded"] is True

    def test_get_failure_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite", max_memory_entries=0)
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        faults.arm("store.get:fail")
        assert store.get(fingerprint) is None  # degraded, not broken
        faults.disarm()
        assert store.get(fingerprint) is not None


class TestJobJournal:
    def test_record_assign_terminal_lifecycle(self, tmp_path):
        journal = JobJournal.at(tmp_path)
        journal.record("w0-job-000001", b'{"submit": 1}')
        entry = journal.get("w0-job-000001")
        assert entry["state"] == "accepted"
        assert entry["body"] == b'{"submit": 1}'
        journal.assign("w0-job-000001", "w0", "job-000001")
        assert [e["public_id"] for e in journal.unfinished()] == [
            "w0-job-000001"
        ]
        assert journal.unfinished("w0")[0]["worker_id"] == "w0"
        assert journal.unfinished("w1") == []
        journal.mark_terminal("w0-job-000001")
        assert journal.unfinished() == []
        assert journal.get("w0-job-000001")["state"] == "terminal"

    def test_redelivery_bumps_counter_and_reassigns(self, tmp_path):
        journal = JobJournal.at(tmp_path)
        journal.record("w0-job-000002", b"{}")
        journal.assign("w0-job-000002", "w0", "job-000002")
        journal.redelivered("w0-job-000002", "w1", "job-000017")
        entry = journal.get("w0-job-000002")
        assert entry["worker_id"] == "w1"
        assert entry["local_id"] == "job-000017"
        assert entry["redeliveries"] == 1
        # Still unfinished until the redelivered run completes.
        assert journal.unfinished("w1") != []

    def test_terminal_error_code_is_persisted(self, tmp_path):
        journal = JobJournal.at(tmp_path)
        journal.record("w0-job-000003", b"{}")
        journal.mark_terminal("w0-job-000003", error_code="service-unavailable")
        assert journal.get("w0-job-000003")["error_code"] == (
            "service-unavailable"
        )

    def test_discard_drops_provisional_rows(self, tmp_path):
        journal = JobJournal.at(tmp_path)
        journal.record("pending-1-000001", b"{}")
        journal.discard("pending-1-000001")
        assert journal.get("pending-1-000001") is None

    def test_survives_reopen(self, tmp_path):
        JobJournal.at(tmp_path).record("w0-job-000004", b'{"x": 1}')
        fresh = JobJournal.at(tmp_path)
        assert fresh.get("w0-job-000004")["body"] == b'{"x": 1}'

    def test_journal_fault_surfaces_as_store_error(self, tmp_path):
        journal = JobJournal.at(tmp_path)
        faults.arm("store.journal:fail")
        with pytest.raises(StoreError):
            journal.record("w0-job-000005", b"{}")


class TestWireRetries:
    def test_dead_port_raises_retryable_wire_error(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more

        async def scenario():
            with pytest.raises(wire.RetryableWireError) as info:
                await wire.http_request(
                    "127.0.0.1", port, "GET", "/v1/healthz", retries=2
                )
            return info.value

        error = run(scenario())
        assert error.retryable is True
        assert error.status == 503

    def test_injected_write_fault_consumes_every_retry(self):
        """An armed wire.write fault is retried like a real refused socket."""
        faults.arm("wire.write:fail")

        async def scenario():
            with pytest.raises(wire.RetryableWireError):
                await wire.http_request(
                    "127.0.0.1", 1, "GET", "/v1/healthz", retries=2
                )

        run(scenario())
        # Initial attempt + exactly the two requested retries.
        assert faults.fired_counts() == {"wire.write": 3}


class TestCancellationAndDeadlines:
    def test_cancel_running_sat_job_interrupts_quickly(self):
        """Cancellation reaches a hard SAT solve at a conflict boundary.

        The 8-qubit instance would run for minutes; the whole scenario —
        including service shutdown, which waits for the executor — must
        finish fast because ``cancel`` interrupts the solver cooperatively.
        """

        async def scenario():
            service = MappingService(
                ibm_qx4(), engine="sat", executor="thread", workers=1
            )
            async with service:
                from repro.circuit.qasm.parser import parse_qasm

                job_id = await service.submit(parse_qasm(_hard_qasm()))
                deadline = time.monotonic() + 30
                while service.status(job_id)["status"] != "running":
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.02)
                snapshot = service.cancel(job_id, reason="chaos test")
                assert snapshot["status"] == FAILED
                with pytest.raises(JobCancelledError):
                    await service.result(job_id, timeout=30)
                assert service.status(job_id)["provenance"]["cancelled"] is True

        started = time.perf_counter()
        run(scenario())
        # Shutdown waited for the solver thread: cooperative interrupt is
        # what makes this fast instead of minutes.
        assert time.perf_counter() - started < 60

    def test_time_limit_fails_with_deadline_exceeded(self):
        async def scenario():
            service = MappingService(
                ibm_qx4(), engine="sat", executor="thread", workers=1
            )
            async with service:
                from repro.circuit.qasm.parser import parse_qasm

                job_id = await service.submit(
                    parse_qasm(_hard_qasm(seed=4)),
                    options={"time_limit": 0.4},
                )
                with pytest.raises(DeadlineExceededError) as info:
                    await service.result(job_id, timeout=60)
                status = service.status(job_id)
                assert status["provenance"]["time_limit"] == 0.4
                assert status["provenance"]["deadline_enforced"] is True
                return info.value

        error = run(scenario())
        assert error.code == "deadline-exceeded"

    def test_delete_route_cancels_over_http(self, tmp_path):
        """DELETE /v1/jobs/{id} fails a running job with ``job-cancelled``."""

        async def scenario():
            async with Supervisor(
                workers=1, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(
                        _hard_qasm(seed=5), "cancel_me",
                        engine="sat", arch="ibm_qx4",
                    ),
                )
                job_id = envelope["payload"]["job_id"]
                cancel_body = json.dumps({
                    "type": "cancel-request",
                    "version": 1,
                    "payload": {"job_id": job_id, "reason": "chaos test"},
                }).encode()
                status, envelope = await _request(
                    port, "DELETE", f"/v1/jobs/{job_id}", cancel_body
                )
                assert status == 200
                assert envelope["payload"]["status"] == "failed"

                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/result?wait=30"
                )
                assert status == 499
                assert envelope["payload"]["error_code"] == "job-cancelled"

                # Cancelling a terminal job is an idempotent no-op.
                status, envelope = await _request(
                    port, "DELETE", f"/v1/jobs/{job_id}", cancel_body
                )
                assert status == 200
                assert envelope["payload"]["status"] == "failed"

        started = time.perf_counter()
        run(scenario())
        assert time.perf_counter() - started < 90

    def test_http_time_limit_maps_to_504(self, tmp_path):
        async def scenario():
            async with Supervisor(
                workers=1, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(
                        _hard_qasm(seed=6), "expire_me",
                        engine="sat", arch="ibm_qx4",
                        options={"time_limit": 0.4},
                    ),
                )
                job_id = envelope["payload"]["job_id"]
                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/result?wait=60"
                )
                assert status == 504
                assert envelope["payload"]["error_code"] == "deadline-exceeded"

        started = time.perf_counter()
        run(scenario())
        assert time.perf_counter() - started < 90


class TestChaosEndToEnd:
    def test_killed_worker_jobs_redeliver_under_original_id(self, tmp_path):
        """kill -9 mid-backlog: every accepted job still reaches a result.

        Jobs queued on the killed worker are redelivered to a live worker
        from the durable journal, **under the same public id** — the client
        keeps polling the id it was given and never learns anything died.
        """

        async def scenario():
            async with Supervisor(
                workers=2, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                job_ids = []
                for index in range(10):
                    qasm = to_qasm(
                        random_cnot_circuit(4, 16, seed=500 + index)
                    )
                    _status, envelope = await _request(
                        port, "POST", "/v1/jobs",
                        _submit_body(qasm, f"chaos_{index}"),
                    )
                    job_ids.append(envelope["payload"]["job_id"])
                assert any(job_id.startswith("w0-") for job_id in job_ids)

                os.kill(supervisor.workers[0].pid, signal.SIGKILL)

                # Poll every job to a terminal result, riding out the
                # redelivery window (dead worker: transient 404/502/refused
                # connections are all expected and all recoverable).
                deadline = time.monotonic() + 120
                for job_id in job_ids:
                    while True:
                        assert time.monotonic() < deadline, job_id
                        try:
                            status, envelope = await _request(
                                port, "GET",
                                f"/v1/jobs/{job_id}/result?wait=15",
                                retries=3,
                            )
                        except wire.RetryableWireError:
                            await asyncio.sleep(0.25)
                            continue
                        if status == 200:
                            payload = envelope["payload"]
                            assert payload["job_id"] == job_id
                            assert payload["result"]["objective"] >= 0
                            break
                        await asyncio.sleep(0.25)

                status, envelope = await _request(port, "GET", "/v1/stats")
                stats = envelope["payload"]["stats"]
                assert stats["journal_enabled"] is True
                assert stats["restarts"] >= 1

            # After the run, the durable journal agrees: nothing unfinished.
            journal = JobJournal.at(tmp_path)
            assert journal.unfinished() == []

        run(scenario())

    def test_finished_job_killed_worker_result_replays_lazily(self, tmp_path):
        """Poll a *finished* job after its worker is killed: still a 200.

        The journal entry is terminal (success), so the redelivery sweep
        skips it — the restarted worker would 404 the id forever.  The
        proxy notices the hole on the next poll, replays the original
        submit body (cheap: the fingerprint cache already holds the
        result), and serves it under the original public id.
        """

        async def scenario():
            async with Supervisor(
                workers=1, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                qasm = to_qasm(random_cnot_circuit(4, 16, seed=900))
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs", _submit_body(qasm, "lazy")
                )
                job_id = envelope["payload"]["job_id"]
                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/result?wait=30"
                )
                assert status == 200
                first = envelope["payload"]["result"]["objective"]

                os.kill(supervisor.workers[0].pid, signal.SIGKILL)
                # Wait for the replacement worker to come up.
                deadline = time.monotonic() + 60
                while True:
                    assert time.monotonic() < deadline
                    try:
                        _s, envelope = await _request(
                            port, "GET", "/v1/stats", retries=2
                        )
                    except wire.RetryableWireError:
                        await asyncio.sleep(0.25)
                        continue
                    stats = envelope["payload"]["stats"]
                    if stats["restarts"] >= 1 and stats["healthy_workers"] >= 1:
                        break
                    await asyncio.sleep(0.25)

                # The restarted worker never heard of the job; the proxy
                # must replay it from the journal under the same id.
                deadline = time.monotonic() + 60
                while True:
                    assert time.monotonic() < deadline
                    try:
                        status, envelope = await _request(
                            port, "GET",
                            f"/v1/jobs/{job_id}/result?wait=15", retries=2,
                        )
                    except wire.RetryableWireError:
                        await asyncio.sleep(0.25)
                        continue
                    if status == 200:
                        break
                    await asyncio.sleep(0.25)
                payload = envelope["payload"]
                assert payload["job_id"] == job_id
                assert payload["result"]["objective"] == first

                _s, envelope = await _request(port, "GET", "/v1/stats")
                assert envelope["payload"]["stats"]["redeliveries"] >= 1

        run(scenario())

    def test_sigterm_drain_racing_worker_crash(self, tmp_path):
        """A worker dies during shutdown: its jobs settle, stop() returns.

        The killed worker's queued jobs are journalled terminal as
        ``service-unavailable`` instead of being redelivered into a
        draining fleet, and shutdown completes promptly instead of hanging
        on a corpse.
        """

        async def scenario():
            supervisor = Supervisor(
                workers=2, engine="dp", cache_dir=str(tmp_path)
            )
            await supervisor.start()
            port = supervisor.port
            job_ids = []
            for index in range(8):
                qasm = to_qasm(random_cnot_circuit(4, 16, seed=800 + index))
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(qasm, f"drain_{index}"),
                )
                job_ids.append(envelope["payload"]["job_id"])
            # Crash one worker and immediately drain: the race the
            # supervisor must win without hanging or losing bookkeeping.
            os.kill(supervisor.workers[0].pid, signal.SIGKILL)
            started = time.perf_counter()
            await supervisor.stop()
            assert time.perf_counter() - started < 60

        run(scenario())
        journal = JobJournal.at(tmp_path)
        # Every journalled job is terminal — the killed worker's pending
        # ones settled with the structured service-unavailable verdict,
        # the rest either finished or were swept at shutdown.
        assert journal.unfinished() == []
        codes = set(_journal_error_codes(tmp_path))
        assert codes <= {None, "service-unavailable"}


def _journal_error_codes(tmp_path):
    import sqlite3

    with sqlite3.connect(str(tmp_path / "results.sqlite")) as conn:
        return [
            row[0]
            for row in conn.execute(
                "SELECT error_code FROM job_journal"
            ).fetchall()
        ]
