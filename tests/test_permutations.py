"""Unit tests for permutation utilities and the swaps(pi) table."""

import itertools

import pytest

from repro.arch.devices import ibm_qx4, linear_architecture
from repro.arch.permutations import (
    PermutationTable,
    apply_permutation,
    compose_permutations,
    identity_permutation,
    invert_permutation,
    minimal_swap_sequences,
    permutation_between,
    swap_transposition,
)


class TestPermutationAlgebra:
    def test_identity(self):
        assert identity_permutation(4) == (0, 1, 2, 3)

    def test_compose(self):
        first = (1, 0, 2)
        second = (2, 1, 0)
        composed = compose_permutations(first, second)
        # Element at 0 goes to 1 (first), then 1 goes to 1 (second) -> 1.
        assert composed == (1, 2, 0)

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            compose_permutations((0, 1), (0, 1, 2))

    def test_invert(self):
        perm = (2, 0, 1)
        assert compose_permutations(perm, invert_permutation(perm)) == (0, 1, 2)

    def test_apply_to_mapping(self):
        mapping = (0, 2)  # logical 0 -> physical 0, logical 1 -> physical 2
        perm = (1, 0, 2)
        assert apply_permutation(perm, mapping) == (1, 2)

    def test_permutation_between_total_mappings(self):
        old = (0, 1, 2)
        new = (2, 0, 1)
        perm = permutation_between(old, new, 3)
        assert apply_permutation(perm, old) == new

    def test_permutation_between_requires_total(self):
        with pytest.raises(ValueError):
            permutation_between((0, 1), (1, 0), 3)

    def test_swap_transposition(self):
        assert swap_transposition(4, (1, 3)) == (0, 3, 2, 1)


class TestMinimalSwapSequences:
    def test_all_permutations_reachable_on_connected_graph(self):
        sequences = minimal_swap_sequences(ibm_qx4())
        assert len(sequences) == 120

    def test_sequences_realise_their_permutation(self):
        coupling = linear_architecture(4)
        sequences = minimal_swap_sequences(coupling)
        for perm, edges in sequences.items():
            realised = identity_permutation(4)
            for edge in edges:
                realised = compose_permutations(realised, swap_transposition(4, edge))
            assert realised == perm

    def test_sequences_are_minimal_on_line3(self):
        # On a 3-qubit line the cyclic shift needs 2 swaps; the full reversal
        # (0 2) needs 3 (the middle qubit must pass through).
        coupling = linear_architecture(3)
        sequences = minimal_swap_sequences(coupling)
        assert len(sequences[(1, 0, 2)]) == 1
        assert len(sequences[(2, 0, 1)]) == 2
        assert len(sequences[(2, 1, 0)]) == 3

    def test_identity_has_empty_sequence(self):
        sequences = minimal_swap_sequences(ibm_qx4())
        assert sequences[identity_permutation(5)] == []


class TestPermutationTable:
    def test_refuses_large_devices(self):
        with pytest.raises(ValueError):
            PermutationTable(linear_architecture(9))

    def test_swaps_counts(self):
        table = PermutationTable(ibm_qx4())
        assert table.swaps(identity_permutation(5)) == 0
        # A single transposition along a coupled edge costs one SWAP.
        assert table.swaps(swap_transposition(5, (0, 1))) == 1
        # A transposition of two uncoupled qubits costs at least three.
        assert table.swaps(swap_transposition(5, (0, 4))) >= 3

    def test_every_permutation_is_reachable(self):
        table = PermutationTable(ibm_qx4())
        for perm in itertools.permutations(range(5)):
            assert table.reachable(perm)

    def test_transition_cost_total_mapping(self):
        table = PermutationTable(ibm_qx4())
        old = (0, 1, 2, 3, 4)
        new = (1, 0, 2, 3, 4)
        assert table.transition_cost(old, new) == 1

    def test_transition_cost_partial_mapping_uses_cheapest_completion(self):
        table = PermutationTable(ibm_qx4())
        # Only two logical qubits: move logical 0 from 0 to 1 and logical 1
        # from 1 to 0 -- one SWAP on edge (0, 1).
        assert table.transition_cost((0, 1), (1, 0)) == 1
        # Keeping everything in place costs nothing.
        assert table.transition_cost((0, 1), (0, 1)) == 0

    def test_transition_sequence_realises_transition(self):
        table = PermutationTable(ibm_qx4())
        old = (0, 1, 2, 4, 3)
        new = (2, 1, 0, 3, 4)
        edges = table.transition_sequence(old, new)
        mapping = list(old)
        for a, b in edges:
            for logical, physical in enumerate(mapping):
                if physical == a:
                    mapping[logical] = b
                elif physical == b:
                    mapping[logical] = a
        assert tuple(mapping) == new
        assert len(edges) == table.transition_cost(old, new)

    def test_consistent_permutations_partial(self):
        table = PermutationTable(ibm_qx4())
        consistent = list(table.consistent_permutations((0, 1, 2), (0, 1, 2)))
        # The two unused physical qubits (3, 4) may stay or swap: 2 completions.
        assert len(consistent) == 2


class TestTransitionEarlyExit:
    """Partial-mapping transitions must not scan every ``free!`` completion."""

    def _counting_table(self, coupling):
        table = PermutationTable(coupling)
        consumed = {"count": 0}
        original = table.consistent_permutations

        def counting(old, new):
            for perm in original(old, new):
                consumed["count"] += 1
                yield perm

        table.consistent_permutations = counting
        return table, consumed

    def test_adjacent_swap_skips_enumeration_on_grid8(self):
        from repro.arch.devices import sweep_grid8

        table, consumed = self._counting_table(sweep_grid8())
        # Two logicals trade places along a coupled edge; six physicals are
        # free, so the old code scanned up to 6! = 720 completions.  The
        # nearest-free matching meets the distance lower bound immediately.
        assert table.transition_cost((0, 1), (1, 0)) == 1
        assert consumed["count"] == 0

    def test_enumeration_stops_at_lower_bound(self):
        from repro.arch.devices import sweep_grid8

        table, consumed = self._counting_table(sweep_grid8())
        # A longer move with many free qubits: whatever path the scan takes,
        # it must stop far short of the factorial completion count.
        cost = table.transition_cost((0,), (7,))
        assert cost >= 3  # 0 and 7 are three edges apart on the grid
        assert consumed["count"] < 720  # 7 free qubits -> 5040 completions

    def test_early_exit_preserves_minimality(self):
        # Differential check against a blind scan over all completions.
        table = PermutationTable(ibm_qx4())
        for old, new in [
            ((0, 1), (1, 0)),
            ((0,), (4,)),
            ((0, 2), (3, 1)),
            ((1, 3, 4), (4, 0, 2)),
        ]:
            brute = min(
                table.swaps(perm)
                for perm in table.consistent_permutations(old, new)
                if table.reachable(perm)
            )
            assert table.transition_cost(old, new) == brute
            sequence = table.transition_sequence(old, new)
            assert len(sequence) == brute
