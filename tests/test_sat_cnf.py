"""Unit tests for CNF data structures."""

import pytest

from repro.sat.cnf import CNF, Clause, CNFError, VariablePool


class TestVariablePool:
    def test_allocation_is_sequential(self):
        pool = VariablePool()
        assert pool.new_var() == 1
        assert pool.new_var("named") == 2
        assert pool.num_vars == 2

    def test_names(self):
        pool = VariablePool()
        x = pool.new_var("x")
        assert pool.name(x) == "x"
        assert pool.name(-x) == "x"
        assert pool.name(99) == "v99"
        assert pool.describe_literal(-x) == "!x"

    def test_new_vars_bulk(self):
        pool = VariablePool()
        variables = pool.new_vars(3, prefix="q")
        assert variables == [1, 2, 3]
        assert pool.name(2) == "q_1"


class TestClause:
    def test_rejects_zero_literal(self):
        with pytest.raises(CNFError):
            Clause([1, 0, 2])

    def test_variables_and_len(self):
        clause = Clause([1, -3, 2])
        assert clause.variables() == (1, 3, 2)
        assert len(clause) == 3

    def test_tautology_detection(self):
        assert Clause([1, -1]).is_tautology()
        assert not Clause([1, 2]).is_tautology()

    def test_satisfied_by(self):
        clause = Clause([1, -2])
        assert clause.satisfied_by({1: True})
        assert clause.satisfied_by({2: False})
        assert not clause.satisfied_by({1: False, 2: True})
        assert not clause.satisfied_by({})


class TestCNF:
    def test_add_clause_and_counts(self):
        cnf = CNF()
        a, b = cnf.new_var("a"), cnf.new_var("b")
        cnf.add_clause([a, b])
        cnf.add_clause([-a])
        assert cnf.num_clauses == 2
        assert cnf.num_vars == 2

    def test_empty_clause_rejected(self):
        cnf = CNF()
        with pytest.raises(CNFError):
            cnf.add_clause([])

    def test_evaluate(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clauses([[a, b], [-a, b]])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: False})

    def test_dimacs_round_trip(self):
        cnf = CNF()
        a, b, c = cnf.new_var(), cnf.new_var(), cnf.new_var()
        cnf.add_clauses([[a, -b], [b, c], [-a, -c]])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 3 3"
        parsed = CNF.from_dimacs(text)
        assert parsed.num_vars == 3
        assert parsed.num_clauses == 3
        assert [list(cl.literals) for cl in parsed.clauses] == [
            [1, -2], [2, 3], [-1, -3]
        ]

    def test_from_dimacs_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_clauses == 1
        assert cnf.num_vars == 2
