"""Tests for UNSAT-core extraction: solver, session and cores helpers."""

import pytest

from repro.sat.cnf import CNF
from repro.sat.cores import UnsatCore, core_from_session, trim_core
from repro.sat.optimize import ObjectiveTerm, OptimizingSolver
from repro.sat.session import SolveSession
from repro.sat.solver import CDCLSolver, SolverResult


def _pigeonhole_solver():
    """Three assumptions that cannot all hold: at-most-one of 1, 2, 3."""
    solver = CDCLSolver()
    solver.add_clause([-1, -2])
    solver.add_clause([-1, -3])
    solver.add_clause([-2, -3])
    return solver


class TestSolverCores:
    def test_core_is_subset_of_assumptions(self):
        solver = _pigeonhole_solver()
        assumptions = [1, 2, 3]
        assert solver.solve(assumptions=assumptions) is SolverResult.UNSAT
        core = solver.last_core()
        assert core
        assert set(core) <= set(assumptions)

    def test_reasserting_core_alone_is_still_unsat(self):
        solver = _pigeonhole_solver()
        assert solver.solve(assumptions=[1, 2, 3]) is SolverResult.UNSAT
        core = list(solver.last_core())
        assert solver.solve(assumptions=core) is SolverResult.UNSAT
        # And the new core is a subset of the re-asserted one.
        assert set(solver.last_core()) <= set(core)

    def test_core_empty_on_sat(self):
        solver = _pigeonhole_solver()
        assert solver.solve(assumptions=[1]) is SolverResult.SAT
        assert solver.last_core() == ()

    def test_core_empty_without_assumptions(self):
        solver = _pigeonhole_solver()
        assert solver.solve() is SolverResult.SAT
        assert solver.last_core() == ()

    def test_core_empty_on_hard_unsat(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) is SolverResult.UNSAT
        # The formula alone is inconsistent: no assumption is to blame.
        assert solver.last_core() == ()

    def test_core_excludes_irrelevant_assumptions(self):
        solver = CDCLSolver()
        solver.add_clause([-1, -2])  # 1 and 2 conflict; 5, 6 are free
        assert (
            solver.solve(assumptions=[5, 6, 1, 2]) is SolverResult.UNSAT
        )
        core = set(solver.last_core())
        assert core == {1, 2}

    def test_core_survives_conflicting_assumption_pair(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[3, -3]) is SolverResult.UNSAT
        core = set(solver.last_core())
        assert core == {3, -3}
        assert solver.solve(assumptions=[3]) is SolverResult.SAT

    def test_core_via_propagation_chain(self):
        # 1 -> 2 -> 3 and assuming -3 must blame the assumption 1.
        solver = CDCLSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) is SolverResult.UNSAT
        assert set(solver.last_core()) == {1, -3}

    def test_solver_not_poisoned_after_core(self):
        solver = _pigeonhole_solver()
        assert solver.solve(assumptions=[1, 2]) is SolverResult.UNSAT
        assert solver.last_core()
        assert solver.solve(assumptions=[2]) is SolverResult.SAT
        assert solver.value(2) is True

    def test_phase_seeding_steers_model(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])  # either works
        solver.seed_phases({1: False, 2: True})
        assert solver.solve() is SolverResult.SAT
        assert solver.model()[2] is True

    def test_phase_seeding_rejects_nonpositive_vars(self):
        with pytest.raises(ValueError):
            CDCLSolver().seed_phases({-1: True})


class TestSessionCores:
    def _session(self):
        cnf = CNF()
        a, b = cnf.new_var("a"), cnf.new_var("b")
        cnf.add_clause([a, b])
        return SolveSession(cnf, [(3, a), (5, b)]), a, b

    def test_solve_with_assumptions_and_last_core(self):
        session, a, b = self._session()
        # Both terms off is impossible (clause forces one of them).
        outcome = session.solve_with_assumptions([-a, -b])
        assert outcome is SolverResult.UNSAT
        assert set(session.last_core()) <= {-a, -b}
        assert session.last_core()
        # The session stays usable.
        assert session.solve_with_assumptions([-a]) is SolverResult.SAT

    def test_term_selectors_match_objective(self):
        session, a, b = self._session()
        selectors = dict(
            (literal, weight) for weight, literal in session.term_selectors()
        )
        assert selectors == {-b: 5, -a: 3}

    def test_assumptions_combine_with_ladder_bound(self):
        session, a, b = self._session()
        # Forbid the cheap term and bound the objective below the dear one.
        outcome = session.solve_with_assumptions([-a], bound=4)
        assert outcome is SolverResult.UNSAT
        core = session.last_core()
        assert core
        labels = [session.describe_literal(literal) for literal in core]
        assert any("bound ladder" in label or "objective term" in label
                   for label in labels)

    def test_describe_literal_falls_back_to_pool_names(self):
        session, a, b = self._session()
        assert "a" in session.describe_literal(a)
        assert session.describe_literal(-a).startswith("objective term")

    def test_core_from_session_labels(self):
        session, a, b = self._session()
        assert session.solve_with_assumptions([-a, -b]) is SolverResult.UNSAT
        core = core_from_session(session)
        assert isinstance(core, UnsatCore)
        assert not core.is_empty
        assert len(core.labels) == len(core.literals)
        assert all("objective term" in label for label in core.labels)

    def test_core_from_session_empty_after_sat(self):
        session, a, b = self._session()
        assert session.solve_with_bound(None) is SolverResult.SAT
        assert core_from_session(session).is_empty


class TestTrimCore:
    def test_trims_to_minimal_core(self):
        solver = CDCLSolver()
        solver.add_clause([-1, -2])

        def is_unsat(assumptions):
            return solver.solve(assumptions=list(assumptions)) is SolverResult.UNSAT

        trimmed = trim_core(is_unsat, [5, 1, 6, 2, 7])
        assert set(trimmed) == {1, 2}

    def test_rejects_non_core(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])

        def is_unsat(assumptions):
            return solver.solve(assumptions=list(assumptions)) is SolverResult.UNSAT

        with pytest.raises(ValueError):
            trim_core(is_unsat, [1])

    def test_unsat_core_describe_falls_back_to_literals(self):
        core = UnsatCore(literals=(3, -4))
        assert core.describe() == ["3", "-4"]
        assert 3 in core and -4 in core and len(core) == 2


class TestOptimizerCoreReporting:
    def test_binary_records_final_core(self):
        cnf = CNF()
        a, b = cnf.new_var("a"), cnf.new_var("b")
        cnf.add_clause([a, b])
        result = OptimizingSolver(
            cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)]
        ).minimize(strategy="binary")
        assert result.objective == 3
        assert result.is_optimal
        # The probe below the optimum was UNSAT under a ladder assumption.
        assert result.final_core
        assert result.core_labels

    def test_core_strategy_records_core_and_counters(self):
        cnf = CNF()
        a, b = cnf.new_var("a"), cnf.new_var("b")
        cnf.add_clause([a, b])
        result = OptimizingSolver(
            cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)]
        ).minimize(strategy="core")
        assert result.objective == 3
        assert result.is_optimal
        assert result.statistics["cores_found"] >= 1
        assert result.statistics["core_lower_bound"] >= 3
        assert result.final_core
