"""Tests for sweep-scale solving: clause sharing, family pruning, benchmarks.

Covers the cross-family reuse machinery of :mod:`repro.exact.sweep` and its
integration into :class:`repro.exact.sat_mapper.SATMapper`:

* learned-clause export/import on the solver and session (boundary, size
  filter, dedupe),
* the clause-import *correctness invariant* — every imported (remapped)
  clause must be implied by the target family's formula (checked by
  refutation, property-style over everything a real sweep exports),
* the provable structural lower bound and the directed/undirected edge
  embeddings,
* lower-bound family pruning (skips without solving, identical minima),
* sweep determinism and sequential/parallel agreement,
* the encoding skeleton cache (identical formulas with and without reuse),
* the ``propagations`` counter surfacing.
"""

import os

import pytest

from repro.arch.devices import ibm_qx4, sweep_grid8
from repro.benchlib.generators import benchmark_circuit
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.exact.encoding import build_encoding, clear_skeleton_cache
from repro.exact.sat_mapper import (
    SATMapper,
    SHARE_MAX_CLAUSE_SIZE,
    SweepContext,
)
from repro.exact.sweep import (
    clause_is_implied,
    encoding_variable_remap,
    find_edge_embedding,
    schedule_cost,
    structural_lower_bound,
    translate_schedule,
)
from repro.pipeline.pipeline import MappingPipeline
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolverResult


TRIANGLE = (0, 1, 2)   # qx4 sub-coupling {(1,0), (2,0), (2,1)}
PATH = (0, 2, 3)       # qx4 sub-coupling {(1,0), (2,1)}


def _subset_coupling(subset):
    return ibm_qx4().subgraph(subset)


# ----------------------------------------------------------------------
# Solver-level export / import
# ----------------------------------------------------------------------
class TestSolverExportImport:
    def _solved_solver(self):
        solver = CDCLSolver()
        # A small pigeonhole-flavoured instance that forces some learning.
        solver.add_clause([1, 2, 3])
        solver.add_clause([-1, -2])
        solver.add_clause([-1, -3])
        solver.add_clause([-2, -3])
        solver.add_clause([1, 2])
        assert solver.solve() is SolverResult.SAT
        return solver

    def test_export_respects_size_filter(self):
        solver = self._solved_solver()
        for clause in solver.export_learned(max_size=2):
            assert len(clause) <= 2

    def test_export_respects_var_filter(self):
        solver = self._solved_solver()
        for clause in solver.export_learned(var_ok=lambda var: var <= 2):
            assert all(abs(literal) <= 2 for literal in clause)

    def test_freeze_boundary_hides_later_learning(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.freeze_exports()
        # Everything learned from now on (under the strengthening clause)
        # must not be exported.
        solver.add_clause([-2, 3])
        solver.add_clause([-2, -3])
        assert solver.solve() is SolverResult.UNSAT
        assert solver.export_learned() == []

    def test_import_dedupe_and_stats(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2, 3])
        added = solver.import_clauses([(1, 2), (2, 1), (1, 2), (1, -1)])
        # (2, 1) and the second (1, 2) are duplicates of (1, 2); (1, -1) is
        # a tautology.  Only one clause lands.
        assert added == 1
        assert solver.statistics["clauses_imported"] == 1
        assert solver.statistics["import_duplicates"] == 2

    def test_imported_unit_constrains_models(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.import_clauses([(-1,)]) == 1
        assert solver.solve() is SolverResult.SAT
        assert solver.model()[2] is True
        assert solver.model()[1] is False


# ----------------------------------------------------------------------
# Structural lower bound
# ----------------------------------------------------------------------
class TestStructuralLowerBound:
    def test_swap_bound_counts_placements(self):
        # 3 distinct pairs on 2 undirected edges need at least one SWAP.
        path = _subset_coupling(PATH)
        gates = [(0, 1), (1, 2), (0, 2)]
        assert structural_lower_bound(path, gates) >= 7

    def test_reversal_bound_on_unidirectional_coupling(self):
        triangle = _subset_coupling(TRIANGLE)
        gates = [(0, 1), (1, 0)]
        assert structural_lower_bound(triangle, gates) >= 4

    def test_zero_for_trivial_instances(self):
        triangle = _subset_coupling(TRIANGLE)
        assert structural_lower_bound(triangle, []) == 0
        assert structural_lower_bound(triangle, [(0, 1)]) == 0

    @pytest.mark.parametrize("subset", [TRIANGLE, PATH])
    def test_bound_never_exceeds_true_optimum(self, subset):
        coupling = _subset_coupling(subset)
        mapper = SATMapper(coupling)
        circuit = benchmark_circuit("ex-1_166")
        gates, _ = mapper.cnot_instance(circuit)
        bound = structural_lower_bound(coupling, gates)
        result = mapper.map(circuit)
        assert bound <= result.added_cost


# ----------------------------------------------------------------------
# Edge embeddings
# ----------------------------------------------------------------------
class TestEdgeEmbedding:
    def test_path_embeds_into_triangle(self):
        sigma = find_edge_embedding(
            _subset_coupling(PATH), _subset_coupling(TRIANGLE)
        )
        assert sigma is not None
        triangle_edges = _subset_coupling(TRIANGLE).edges
        for (u, v) in _subset_coupling(PATH).edges:
            assert (sigma[u], sigma[v]) in triangle_edges

    def test_triangle_does_not_embed_into_path(self):
        assert find_edge_embedding(
            _subset_coupling(TRIANGLE), _subset_coupling(PATH)
        ) is None

    def test_undirected_embedding_is_looser(self):
        # qx4's two 4-qubit families are not directed-comparable but share
        # their undirected shape (triangle plus pendant).
        inner = ibm_qx4().subgraph((0, 1, 2, 3))
        outer = ibm_qx4().subgraph((0, 2, 3, 4))
        assert find_edge_embedding(inner, outer) is None
        assert find_edge_embedding(inner, outer, directed=False) is not None

    def test_size_mismatch_returns_none(self):
        assert find_edge_embedding(
            _subset_coupling(PATH), ibm_qx4().subgraph((0, 1, 2, 3))
        ) is None


# ----------------------------------------------------------------------
# Clause-import correctness (property-style)
# ----------------------------------------------------------------------
class TestImportCorrectness:
    def _family_pieces(self, subset, circuit):
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        gates, spots = mapper.cnot_instance(circuit)
        state = mapper._family_state(
            _subset_coupling(subset), gates, circuit.num_qubits, spots
        )
        return mapper, gates, spots, state

    def test_every_exported_clause_is_implied_at_home(self):
        circuit = benchmark_circuit("ex-1_166")
        mapper, gates, spots, state = self._family_pieces(TRIANGLE, circuit)
        mapper._solve_family(state, TRIANGLE, None, None)
        exported = state.session.export_learned(
            max_size=SHARE_MAX_CLAUSE_SIZE,
            var_ok=state.encoding.is_shared_variable,
        )
        assert exported, "the triangle solve should learn shareable clauses"
        for clause in exported:
            assert clause_is_implied(state.encoding.cnf, clause)

    def test_every_imported_clause_is_implied_in_target(self):
        """Property: remapped clauses are consequences of the target CNF.

        Solve the triangle family, remap its exports into the *path* family
        (a different directed structure) along the embedding, and check
        every fully-mapped clause by refutation: the target formula plus
        the clause's negation must be UNSAT.
        """
        circuit = benchmark_circuit("ex-1_166")
        mapper, gates, spots, source = self._family_pieces(TRIANGLE, circuit)
        mapper._solve_family(source, TRIANGLE, None, None)
        exported = source.session.export_learned(
            max_size=SHARE_MAX_CLAUSE_SIZE,
            var_ok=source.encoding.is_shared_variable,
        )
        _, _, _, target = self._family_pieces(PATH, circuit)
        sigma = find_edge_embedding(
            _subset_coupling(PATH), _subset_coupling(TRIANGLE),
            directed=False,
        )
        assert sigma is not None
        from repro.arch.permutations import invert_permutation

        remap = encoding_variable_remap(
            source.encoding, target.encoding, invert_permutation(sigma)
        )
        checked = 0
        for clause in exported:
            mapped = [
                remap[abs(l)] if l > 0 else -remap[abs(l)]
                for l in clause if abs(l) in remap
            ]
            if len(mapped) != len(clause):
                continue  # touches a variable with no role in the target
            assert clause_is_implied(target.encoding.cnf, mapped), (
                f"imported clause {clause} -> {mapped} is not implied"
            )
            checked += 1
        assert checked > 0, "at least one clause must fully transfer"

    def test_sweep_runs_clean_under_import_checking(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_IMPORTS", "1")
        circuit = paper_example_cnot_skeleton()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert result.added_cost == 4


# ----------------------------------------------------------------------
# Model transfer between families
# ----------------------------------------------------------------------
class TestModelTransfer:
    def test_schedule_cost_matches_solved_objective(self):
        circuit = benchmark_circuit("ex-1_166")
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        gates, spots = mapper.cnot_instance(circuit)
        state = mapper._family_state(
            _subset_coupling(TRIANGLE), gates, circuit.num_qubits, spots
        )
        outcome = mapper._solve_family(state, TRIANGLE, None, None)
        assert outcome.is_optimal
        cost = schedule_cost(
            _subset_coupling(TRIANGLE),
            state.encoding.permutation_table,
            gates,
            state.local_mappings,
        )
        assert cost == outcome.objective

    def test_schedule_cost_rejects_uncoupled_placement(self):
        path = _subset_coupling(PATH)
        table = None
        from repro.arch.permutations import PermutationTable
        table = PermutationTable(path)
        # Logical 0 and 2 sit on physical 0 and 2, which are not coupled.
        assert schedule_cost(path, table, [(0, 2)], [(0, 1, 2)]) is None

    def test_translate_schedule_relabels_physicals(self):
        translated = translate_schedule([(0, 1, 2), (1, 0, 2)], [2, 0, 1])
        assert translated == [(2, 0, 1), (0, 2, 1)]


# ----------------------------------------------------------------------
# Sweep behaviour: pruning, determinism, equivalence
# ----------------------------------------------------------------------
class TestSweepBehaviour:
    def test_pruning_and_sharing_preserve_minima(self):
        for circuit in (
            paper_example_cnot_skeleton(), benchmark_circuit("ex-1_166")
        ):
            on = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
            off = SATMapper(
                ibm_qx4(), use_subsets=True,
                share_clauses=False, prune_families=False,
            ).map(circuit)
            assert on.added_cost == off.added_cost
            assert on.optimal == off.optimal

    def test_table1_sweep_prunes_at_least_one_family(self):
        circuit = benchmark_circuit("ex-1_166")
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert result.statistics["families_pruned"] >= 1
        assert result.statistics["subsets_pruned"] >= 1

    def test_pruning_reduces_conflicts(self):
        circuit = benchmark_circuit("ex-1_166")
        on = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        off = SATMapper(
            ibm_qx4(), use_subsets=True,
            share_clauses=False, prune_families=False,
        ).map(circuit)
        assert (
            on.statistics["solver_conflicts"]
            < off.statistics["solver_conflicts"]
        )

    def test_disabled_pruning_reports_no_pruned_families(self):
        circuit = benchmark_circuit("ex-1_166")
        result = SATMapper(
            ibm_qx4(), use_subsets=True, prune_families=False
        ).map(circuit)
        assert result.statistics["families_pruned"] == 0
        assert result.statistics["subsets_pruned"] == 0

    def test_sweep_is_deterministic(self):
        circuit = benchmark_circuit("ex-1_166")
        first = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        second = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        for key in (
            "solver_conflicts", "solver_iterations", "families_pruned",
            "clauses_exported", "clauses_imported",
        ):
            assert first.statistics[key] == second.statistics[key], key

    def test_plan_families_orders_by_lower_bound(self):
        circuit = benchmark_circuit("ex-1_166")
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        gates, _ = mapper.cnot_instance(circuit)
        subsets = mapper.candidate_subsets(circuit.num_qubits)
        plans = mapper.plan_families(subsets, gates)
        bounds = [plan.heuristic_lower_bound for plan in plans]
        assert bounds == sorted(bounds)
        covered = sorted(
            index for plan in plans for index in plan.indices
        )
        assert covered == list(range(len(subsets)))

    def test_parallel_sweep_agrees_with_sequential(self):
        circuit = benchmark_circuit("ham3_102")
        options = {"use_subsets": True}
        sequential = MappingPipeline(
            sweep_grid8(), engine="sat", engine_options=options, workers=1
        ).map(circuit)
        parallel = MappingPipeline(
            sweep_grid8(), engine="sat", engine_options=options, workers=4
        ).map(circuit)
        assert sequential.added_cost == parallel.added_cost
        assert sequential.optimal == parallel.optimal

    def test_grid_sweep_shares_and_prunes(self):
        circuit = benchmark_circuit("ham3_102")
        result = SATMapper(sweep_grid8(), use_subsets=True).map(circuit)
        stats = result.statistics
        assert stats["families_pruned"] >= 1
        assert stats["clauses_imported"] >= 1
        assert stats["models_transferred"] >= 1


# ----------------------------------------------------------------------
# Encoding skeleton cache
# ----------------------------------------------------------------------
class TestSkeletonCache:
    def test_same_undirected_structure_shares_skeleton(self):
        clear_skeleton_cache()
        gates = [(0, 1), (1, 2), (0, 2)]
        first = build_encoding(gates, 3, _subset_coupling(TRIANGLE))
        second = build_encoding(gates, 3, ibm_qx4().subgraph((2, 3, 4)))
        assert first.skeleton is second.skeleton
        # The x block is literally identical; the spot block may shift.
        assert first.x_vars[0][(0, 0)] == second.x_vars[0][(0, 0)]

    def test_reuse_flag_changes_nothing_about_the_formula(self):
        gates = [(0, 1), (1, 2), (0, 2)]
        coupling = _subset_coupling(TRIANGLE)
        clear_skeleton_cache()
        cached = build_encoding(gates, 3, coupling)
        fresh = build_encoding(gates, 3, coupling, reuse_skeleton=False)
        assert cached.cnf.to_dimacs() == fresh.cnf.to_dimacs()
        assert [
            (t.weight, t.literal) for t in cached.objective
        ] == [(t.weight, t.literal) for t in fresh.objective]

    def test_shared_variable_ranges(self):
        gates = [(0, 1), (1, 2)]
        encoding = build_encoding(gates, 3, _subset_coupling(TRIANGLE))
        assert encoding.is_shared_variable(1)
        assert encoding.is_shared_variable(encoding.x_var_limit)
        # The edge block (between x and spot blocks) is private.
        assert not encoding.is_shared_variable(encoding.x_var_limit + 1)
        assert encoding.is_shared_variable(encoding.spot_var_end)
        assert not encoding.is_shared_variable(encoding.spot_var_end + 1)


# ----------------------------------------------------------------------
# Propagations counter surfacing (bench harness dependency)
# ----------------------------------------------------------------------
class TestPropagationsCounter:
    def test_optimization_result_carries_propagations(self):
        from repro.sat.optimize import ObjectiveTerm, OptimizingSolver

        cnf = CNF()
        a, b = cnf.new_var("a"), cnf.new_var("b")
        cnf.add_clause([a, b])
        result = OptimizingSolver(
            cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)]
        ).minimize()
        assert result.statistics["propagations"] > 0

    def test_mapping_result_carries_solver_propagations(self):
        circuit = paper_example_cnot_skeleton()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert result.statistics["solver_propagations"] > 0


# ----------------------------------------------------------------------
# CLI --profile
# ----------------------------------------------------------------------
class TestProfileFlag:
    def test_profile_prints_report_to_stderr(self, tmp_path, capsys):
        from repro.circuit.circuit import QuantumCircuit
        from repro.circuit.qasm import to_qasm
        from repro.cli import main

        circuit = QuantumCircuit(3, name="profiled")
        circuit.cx(0, 1).cx(1, 2)
        path = tmp_path / "circuit.qasm"
        path.write_text(to_qasm(circuit))
        exit_code = main([str(path), "--engine", "sat", "--profile"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cumulative" in captured.err
        assert "added operations" in captured.out
