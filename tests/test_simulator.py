"""Unit tests for the statevector simulator, unitary builder and equivalence check."""

import math

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.sim.equivalence import (
    mapped_circuit_equivalent,
    states_equal_up_to_global_phase,
)
from repro.sim.statevector import (
    SimulationError,
    StatevectorSimulator,
    basis_state,
    random_state,
    zero_state,
)
from repro.sim.unitary import circuit_unitary, unitaries_equal_up_to_global_phase


class TestStatevector:
    def test_zero_state(self):
        state = zero_state(2)
        assert state[0] == 1.0
        assert np.allclose(np.linalg.norm(state), 1.0)

    def test_basis_state_bounds(self):
        with pytest.raises(SimulationError):
            basis_state(2, 4)

    def test_x_flips_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        state = StatevectorSimulator().run(circuit)
        # Little-endian: qubit 1 set -> index 2.
        assert abs(state[2]) == pytest.approx(1.0)

    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        probabilities = StatevectorSimulator().probabilities(circuit)
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[3] == pytest.approx(0.5)
        assert probabilities[1] == pytest.approx(0.0)
        assert probabilities[2] == pytest.approx(0.0)

    def test_cnot_direction(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.cx(0, 1)  # control is qubit 0
        state = StatevectorSimulator().run(circuit)
        assert abs(state[3]) == pytest.approx(1.0)
        circuit2 = QuantumCircuit(2)
        circuit2.x(0)
        circuit2.cx(1, 0)  # control is qubit 1 (still |0>), so nothing happens
        state2 = StatevectorSimulator().run(circuit2)
        assert abs(state2[1]) == pytest.approx(1.0)

    def test_swap_gate(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.swap(0, 1)
        state = StatevectorSimulator().run(circuit)
        assert abs(state[2]) == pytest.approx(1.0)

    def test_hadamard_twice_is_identity(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).h(0)
        state = StatevectorSimulator().run(circuit)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_t_and_rz_phases_match(self):
        t_circuit = QuantumCircuit(1)
        t_circuit.x(0).t(0)
        rz_circuit = QuantumCircuit(1)
        rz_circuit.x(0).rz(math.pi / 4, 0)
        t_state = StatevectorSimulator().run(t_circuit)
        rz_state = StatevectorSimulator().run(rz_circuit)
        assert states_equal_up_to_global_phase(t_state, rz_state)

    def test_measure_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        # Measurements are skipped by run(); apply_gate rejects them.
        state = StatevectorSimulator().run(circuit)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_initial_state_dimension_check(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(circuit, initial_state=np.ones(3))

    def test_random_state_normalised(self):
        state = random_state(3, seed=11)
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestUnitary:
    def test_cnot_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        unitary = circuit_unitary(circuit)
        expected = np.zeros((4, 4))
        # control = qubit 0 (LSB): |01> -> |11>, |11> -> |01>.
        expected[0, 0] = expected[2, 2] = 1
        expected[3, 1] = expected[1, 3] = 1
        assert np.allclose(unitary, expected)

    def test_unitarity(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(2).cx(1, 2).h(2)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-9)

    def test_global_phase_comparison(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        unitary = circuit_unitary(circuit)
        assert unitaries_equal_up_to_global_phase(unitary, unitary * np.exp(1j * 0.7))
        assert not unitaries_equal_up_to_global_phase(unitary, np.eye(2))


class TestSwapDecomposition:
    def test_seven_gate_decomposition_equals_swap(self):
        """The paper's Fig. 3: SWAP = CX, H, H, CX, H, H, CX (middle reversed)."""
        decomposed = QuantumCircuit(2)
        decomposed.cx(0, 1)
        decomposed.h(0)
        decomposed.h(1)
        decomposed.cx(0, 1)
        decomposed.h(0)
        decomposed.h(1)
        decomposed.cx(0, 1)
        plain = QuantumCircuit(2)
        plain.swap(0, 1)
        assert unitaries_equal_up_to_global_phase(
            circuit_unitary(decomposed), circuit_unitary(plain)
        )

    def test_four_hadamards_reverse_cnot(self):
        """The paper's direction trick: H^2 CX H^2 equals the reversed CX."""
        reversed_by_h = QuantumCircuit(2)
        reversed_by_h.h(0)
        reversed_by_h.h(1)
        reversed_by_h.cx(1, 0)
        reversed_by_h.h(0)
        reversed_by_h.h(1)
        direct = QuantumCircuit(2)
        direct.cx(0, 1)
        assert unitaries_equal_up_to_global_phase(
            circuit_unitary(reversed_by_h), circuit_unitary(direct)
        )


class TestEquivalenceChecker:
    def test_identical_circuit_is_equivalent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert mapped_circuit_equivalent(circuit, circuit, (0, 1), (0, 1))

    def test_relabelled_circuit_is_equivalent(self):
        original = QuantumCircuit(2)
        original.h(0).cx(0, 1)
        mapped = QuantumCircuit(3)
        mapped.h(2).cx(2, 0)
        assert mapped_circuit_equivalent(original, mapped, (2, 0), (2, 0))

    def test_wrong_circuit_is_detected(self):
        original = QuantumCircuit(2)
        original.h(0).cx(0, 1)
        wrong = QuantumCircuit(2)
        wrong.h(0).cx(1, 0)
        assert not mapped_circuit_equivalent(original, wrong, (0, 1), (0, 1))

    def test_wrong_final_mapping_is_detected(self):
        original = QuantumCircuit(2)
        original.x(0)
        mapped = QuantumCircuit(2)
        mapped.x(0)
        assert not mapped_circuit_equivalent(original, mapped, (0, 1), (1, 0))
