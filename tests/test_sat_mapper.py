"""Tests for the SAT-based exact mapper (kept small: the engine is pure Python)."""

import pytest

from repro.arch.devices import ibm_qx4, linear_architecture
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_cnot_skeleton,
)
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.exact.sat_mapper import SATMapper
from repro.exact.strategies import QubitTriangleStrategy
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result


def triangle_circuit():
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(0, 2)
    return circuit


class TestSATMapper:
    def test_matches_dp_on_small_circuit(self):
        circuit = triangle_circuit()
        sat_result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        dp_result = DPMapper(ibm_qx4()).map(circuit)
        assert sat_result.added_cost == dp_result.added_cost
        assert verify_result(sat_result, ibm_qx4()).compliant
        assert result_is_equivalent(sat_result)

    def test_full_device_proves_minimality(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        result = SATMapper(ibm_qx4(), use_subsets=False).map(circuit)
        assert result.optimal
        assert result.added_cost == DPMapper(ibm_qx4()).map(circuit).added_cost

    def test_subsets_do_not_claim_minimality(self):
        circuit = triangle_circuit()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert not result.optimal

    def test_restricted_strategy_never_beats_minimum(self):
        circuit = triangle_circuit()
        minimal = DPMapper(ibm_qx4()).map(circuit)
        restricted = SATMapper(
            ibm_qx4(), strategy=QubitTriangleStrategy(), use_subsets=True
        ).map(circuit)
        assert restricted.added_cost >= minimal.added_cost
        assert result_is_equivalent(restricted)

    def test_circuit_without_cnots(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1)
        result = SATMapper(ibm_qx4()).map(circuit)
        assert result.added_cost == 0
        assert result.optimal

    def test_oversized_circuit_rejected(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        with pytest.raises(ValueError):
            SATMapper(ibm_qx4()).map(circuit)

    def test_binary_optimizer_strategy(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        result = SATMapper(
            ibm_qx4(), use_subsets=True, optimizer_strategy="binary"
        ).map(circuit)
        assert result.added_cost == DPMapper(ibm_qx4()).map(circuit).added_cost

    def test_reversal_needed_on_directed_line(self):
        line = linear_architecture(2)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        result = SATMapper(line).map(circuit)
        assert result.added_cost == 4
        assert result.cost.reversals == 1
        assert result_is_equivalent(result)

    def test_statistics_are_reported(self):
        circuit = triangle_circuit()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert result.statistics["subsets_tried"] >= 1
        assert result.statistics["encoding_variables"] > 0
        assert result.statistics["encoding_clauses"] > 0


class TestSubsetFamilies:
    """Structurally identical subsets share one encoding and one session."""

    def test_qx4_four_qubit_subsets_form_two_families(self):
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        subsets = mapper.candidate_subsets(4)
        groups = mapper.subset_family_groups(subsets)
        assert len(subsets) == 4
        assert len(groups) == 2
        assert sorted(index for group in groups for index in group) == [0, 1, 2, 3]
        for group in groups:
            assert group == sorted(group)

    def test_family_reuse_in_sequential_sweep(self):
        # With pruning disabled, both families are solved and their second
        # members are mirrored for free (the PR 3 baseline behaviour).
        circuit = paper_example_cnot_skeleton()
        result = SATMapper(
            ibm_qx4(), use_subsets=True, prune_families=False
        ).map(circuit)
        stats = result.statistics
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert stats["subsets_tried"] == 4
        assert stats["subsets_solved"] == 2
        assert stats["family_reuses"] == 2
        # Only the solved instances spend solver iterations.
        assert stats["solver_iterations"] > 0
        assert stats["session_solve_calls"] == stats["solver_iterations"]

    def test_family_pruning_skips_second_family_entirely(self):
        # With pruning on, the second family's structural reversal bound (4)
        # already exceeds the incumbent-derived bound (3): it is skipped
        # without a single solver call, same proven minimum.
        circuit = paper_example_cnot_skeleton()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        stats = result.statistics
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert stats["subsets_tried"] == 4
        assert stats["subsets_solved"] == 1
        assert stats["family_reuses"] == 1
        assert stats["subsets_pruned"] == 2
        assert stats["families_pruned"] == 1

    def test_family_reuse_matches_unshared_objective(self):
        # Cross-check: each subset solved independently (no family sharing)
        # must agree with the swept result on the minimum objective.
        circuit = paper_example_cnot_skeleton()
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        gates, spots = mapper.cnot_instance(circuit)
        independent = [
            mapper.solve_subset(gates, circuit.num_qubits, spots, subset)
            for subset in mapper.candidate_subsets(circuit.num_qubits)
        ]
        best = SATMapper.select_best_outcome(independent)
        swept = mapper.map(circuit)
        assert best is not None
        assert swept.objective == best.objective

    def test_mirror_outcome_translates_device_indices(self):
        circuit = paper_example_cnot_skeleton()
        mapper = SATMapper(ibm_qx4(), use_subsets=True)
        gates, spots = mapper.cnot_instance(circuit)
        subsets = mapper.candidate_subsets(circuit.num_qubits)
        groups = mapper.subset_family_groups(subsets)
        group = next(g for g in groups if len(g) > 1)
        solved = mapper.solve_subset(
            gates, circuit.num_qubits, spots, subsets[group[0]]
        )
        assert solved.is_satisfiable
        mirrored = SATMapper.mirror_outcome(solved, subsets[group[1]])
        assert mirrored.reused
        assert mirrored.status == solved.status
        assert mirrored.objective == solved.objective
        member = set(subsets[group[1]])
        for mapping in mirrored.mappings:
            assert set(mapping) <= member
        # Mirrored mappings preserve the *relative* placement.
        rep_positions = {q: i for i, q in enumerate(subsets[group[0]])}
        mem_positions = {q: i for i, q in enumerate(subsets[group[1]])}
        for original, translated in zip(solved.mappings, mirrored.mappings):
            assert [rep_positions[q] for q in original] == [
                mem_positions[q] for q in translated
            ]

    def test_accepts_external_bound_flags(self):
        from repro.exact.strategies import get_strategy

        assert SATMapper(ibm_qx4()).accepts_external_bound
        assert not SATMapper(ibm_qx4(), use_subsets=True).accepts_external_bound
        assert not SATMapper(
            ibm_qx4(), strategy=get_strategy("odd")
        ).accepts_external_bound
