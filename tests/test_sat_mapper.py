"""Tests for the SAT-based exact mapper (kept small: the engine is pure Python)."""

import pytest

from repro.arch.devices import ibm_qx4, linear_architecture
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.exact.sat_mapper import SATMapper
from repro.exact.strategies import QubitTriangleStrategy
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result


def triangle_circuit():
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(0, 2)
    return circuit


class TestSATMapper:
    def test_matches_dp_on_small_circuit(self):
        circuit = triangle_circuit()
        sat_result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        dp_result = DPMapper(ibm_qx4()).map(circuit)
        assert sat_result.added_cost == dp_result.added_cost
        assert verify_result(sat_result, ibm_qx4()).compliant
        assert result_is_equivalent(sat_result)

    def test_full_device_proves_minimality(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        result = SATMapper(ibm_qx4(), use_subsets=False).map(circuit)
        assert result.optimal
        assert result.added_cost == DPMapper(ibm_qx4()).map(circuit).added_cost

    def test_subsets_do_not_claim_minimality(self):
        circuit = triangle_circuit()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert not result.optimal

    def test_restricted_strategy_never_beats_minimum(self):
        circuit = triangle_circuit()
        minimal = DPMapper(ibm_qx4()).map(circuit)
        restricted = SATMapper(
            ibm_qx4(), strategy=QubitTriangleStrategy(), use_subsets=True
        ).map(circuit)
        assert restricted.added_cost >= minimal.added_cost
        assert result_is_equivalent(restricted)

    def test_circuit_without_cnots(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1)
        result = SATMapper(ibm_qx4()).map(circuit)
        assert result.added_cost == 0
        assert result.optimal

    def test_oversized_circuit_rejected(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        with pytest.raises(ValueError):
            SATMapper(ibm_qx4()).map(circuit)

    def test_binary_optimizer_strategy(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        result = SATMapper(
            ibm_qx4(), use_subsets=True, optimizer_strategy="binary"
        ).map(circuit)
        assert result.added_cost == DPMapper(ibm_qx4()).map(circuit).added_cost

    def test_reversal_needed_on_directed_line(self):
        line = linear_architecture(2)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        result = SATMapper(line).map(circuit)
        assert result.added_cost == 4
        assert result.cost.reversals == 1
        assert result_is_equivalent(result)

    def test_statistics_are_reported(self):
        circuit = triangle_circuit()
        result = SATMapper(ibm_qx4(), use_subsets=True).map(circuit)
        assert result.statistics["subsets_tried"] >= 1
        assert result.statistics["encoding_variables"] > 0
        assert result.statistics["encoding_clauses"] > 0
