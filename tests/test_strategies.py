"""Unit tests for the permutation-restriction strategies (Section 4.2)."""

import pytest

from repro.arch.devices import ibm_qx4, linear_architecture
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.circuit.circuit import QuantumCircuit
from repro.exact.strategies import (
    AllGatesStrategy,
    DisjointQubitsStrategy,
    OddGatesStrategy,
    QubitTriangleStrategy,
    WindowStrategy,
    available_strategies,
    get_strategy,
)


def chain_circuit(num_qubits, num_gates):
    circuit = QuantumCircuit(num_qubits)
    for index in range(num_gates):
        circuit.cx(index % num_qubits, (index + 1) % num_qubits)
    return circuit


class TestSpots:
    def test_all_gates(self):
        gates = chain_circuit(4, 6).cnot_gates()
        assert AllGatesStrategy().spots(gates, ibm_qx4()) == list(range(6))

    def test_odd_gates_matches_paper_counting(self):
        # 1-based odd indices g1, g3, g5, ... -> 0-based 0, 2, 4, ...
        gates = chain_circuit(4, 7).cnot_gates()
        assert OddGatesStrategy().spots(gates, ibm_qx4()) == [0, 2, 4, 6]
        gates = chain_circuit(4, 8).cnot_gates()
        assert len(OddGatesStrategy().spots(gates, ibm_qx4())) == 4

    def test_disjoint_qubits_on_paper_example(self):
        # Example 10: gates g1 and g2 act on disjoint qubits, so only four
        # spots remain (the initial one plus g3, g4, g5).
        gates = paper_example_cnot_skeleton().cnot_gates()
        spots = DisjointQubitsStrategy().spots(gates, ibm_qx4())
        assert spots == [0, 2, 3, 4]

    def test_qubit_triangle_on_paper_example(self):
        # Example 10: one permutation spot before g2 plus the initial mapping.
        gates = paper_example_cnot_skeleton().cnot_gates()
        spots = QubitTriangleStrategy().spots(gates, ibm_qx4())
        assert spots[0] == 0
        assert len(spots) == 2

    def test_qubit_triangle_without_triangles_uses_pairs(self):
        line = linear_architecture(4)
        gates = chain_circuit(3, 4).cnot_gates()
        spots = QubitTriangleStrategy().spots(gates, line)
        # Blocks limited to 2-qubit support.
        assert spots[0] == 0
        assert len(spots) >= 2

    def test_window_strategy(self):
        gates = chain_circuit(4, 10).cnot_gates()
        assert WindowStrategy(window=5).spots(gates, ibm_qx4()) == [0, 5]
        with pytest.raises(ValueError):
            WindowStrategy(window=0)

    def test_spot_zero_always_included(self):
        gates = chain_circuit(4, 5).cnot_gates()
        for name in ("all", "disjoint", "odd", "triangle"):
            strategy = get_strategy(name)
            assert 0 in strategy.spots(gates, ibm_qx4()), name


class TestRegistry:
    def test_lookup_and_aliases(self):
        assert isinstance(get_strategy("all"), AllGatesStrategy)
        assert isinstance(get_strategy("minimal"), AllGatesStrategy)
        assert isinstance(get_strategy("disjoint_qubits"), DisjointQubitsStrategy)
        assert isinstance(get_strategy("ODD"), OddGatesStrategy)
        assert isinstance(get_strategy("triangle"), QubitTriangleStrategy)
        assert isinstance(get_strategy("window", window=3), WindowStrategy)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            get_strategy("quantum_annealing")

    def test_available_strategies_all_resolvable(self):
        for name in available_strategies():
            assert get_strategy(name) is not None

    def test_minimality_flags(self):
        assert AllGatesStrategy().guarantees_minimality
        assert not DisjointQubitsStrategy().guarantees_minimality
        assert not OddGatesStrategy().guarantees_minimality
        assert not QubitTriangleStrategy().guarantees_minimality
