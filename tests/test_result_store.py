"""Tests for MappingResult serialization and the persistent ResultStore."""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.arch.devices import ibm_qx4
from repro.benchlib.generators import random_clifford_t_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.exact.result import RESULT_SCHEMA_VERSION, MappingResult
from repro.service.errors import InvalidResultError
from repro.service.fingerprint import job_fingerprint
from repro.service.store import ResultStore

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _result(seed=1):
    circuit = random_clifford_t_circuit(3, 4, 6, seed=seed)
    return DPMapper(ibm_qx4()).map(circuit)


def _fingerprint(result):
    return job_fingerprint(result.original_circuit, ibm_qx4(), "dp", {})


class TestResultSerialization:
    def test_round_trip_preserves_everything(self):
        result = _result()
        rebuilt = MappingResult.from_dict(result.to_dict())
        assert rebuilt.added_cost == result.added_cost
        assert rebuilt.total_cost == result.total_cost
        assert rebuilt.objective == result.objective
        assert rebuilt.optimal == result.optimal
        assert rebuilt.engine == result.engine
        assert rebuilt.strategy == result.strategy
        assert rebuilt.num_permutation_spots == result.num_permutation_spots
        assert rebuilt.runtime_seconds == result.runtime_seconds
        assert rebuilt.statistics == result.statistics
        assert rebuilt.schedule.mappings == result.schedule.mappings
        assert rebuilt.schedule.initial_mapping == result.schedule.initial_mapping
        assert (
            rebuilt.mapped_circuit.fingerprint()
            == result.mapped_circuit.fingerprint()
        )
        assert (
            rebuilt.original_circuit.fingerprint()
            == result.original_circuit.fingerprint()
        )
        assert rebuilt.mapped_circuit.name == result.mapped_circuit.name
        assert rebuilt.original_circuit.name == result.original_circuit.name

    def test_payload_is_json_ready(self):
        json.dumps(_result().to_dict())

    def test_version_mismatch_rejected(self):
        payload = _result().to_dict()
        payload["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            MappingResult.from_dict(payload)

    def test_validate_passes_on_engine_output(self):
        result = _result()
        result.validate()
        result.validate(ibm_qx4())

    def test_validate_rejects_cost_mismatch(self):
        result = _result()
        result.mapped_circuit.swap(0, 1)  # corrupt: extra gate not in breakdown
        with pytest.raises(ValueError, match="cost mismatch"):
            result.validate()

    def test_validate_rejects_bad_schedule(self):
        result = _result()
        result.schedule.initial_mapping = (0, 0, 1)  # not injective
        with pytest.raises(ValueError, match="injective"):
            result.validate()

    def test_validate_rejects_noncompliant_circuit(self):
        from repro.exact.cost import CostBreakdown
        from repro.exact.result import MappingSchedule

        original = QuantumCircuit(2)
        original.cx(0, 1)
        mapped = QuantumCircuit(5)
        mapped.cx(0, 1)  # qx4 only allows 1 -> 0
        result = MappingResult(
            mapped_circuit=mapped,
            original_circuit=original,
            schedule=MappingSchedule(
                num_logical=2, num_physical=5,
                mappings=[(0, 1)], initial_mapping=(0, 1),
            ),
            cost=CostBreakdown(original_gates=1, swaps=0, reversals=0),
        )
        result.validate()  # internally consistent...
        with pytest.raises(ValueError, match="violates"):
            result.validate(ibm_qx4())  # ...but not architecture-compliant


class TestResultStore:
    def test_memory_only_round_trip(self):
        store = ResultStore()
        result = _result()
        fingerprint = _fingerprint(result)
        assert store.get(fingerprint) is None
        store.put(fingerprint, result)
        assert store.get(fingerprint) is result  # memory tier shares objects
        assert fingerprint in store
        assert len(store) == 1

    def test_disk_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        # A second store over the same file sees the entry (cold memory).
        fresh = ResultStore(tmp_path / "results.sqlite")
        loaded = fresh.get(fingerprint)
        assert loaded is not None
        assert loaded.added_cost == result.added_cost
        assert (
            loaded.mapped_circuit.fingerprint()
            == result.mapped_circuit.fingerprint()
        )
        stats = fresh.stats()
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 0

    def test_memory_lru_bound(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite", max_memory_entries=2)
        results = [_result(seed) for seed in (1, 2, 3)]
        for result in results:
            store.put(_fingerprint(result), result)
        assert store.stats()["memory_entries"] == 2
        # The evicted entry is still served from disk.
        assert store.get(_fingerprint(results[0])) is not None

    def test_invalid_result_refused(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        result = _result()
        result.mapped_circuit.swap(0, 1)  # breaks the cost bookkeeping
        with pytest.raises(InvalidResultError) as excinfo:
            store.put("deadbeef", result)
        assert excinfo.value.code == "invalid-result"
        assert excinfo.value.to_dict()["details"]["fingerprint"] == "deadbeef"
        assert "deadbeef" not in store
        assert store.stats()["invalid_rejected"] == 1

    def test_corrupt_row_dropped_as_miss(self, tmp_path):
        path = tmp_path / "results.sqlite"
        store = ResultStore(path)
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        import sqlite3

        with sqlite3.connect(str(path)) as conn:
            conn.execute(
                "UPDATE results SET payload = ? WHERE fingerprint = ?",
                ("{not json", fingerprint),
            )
        fresh = ResultStore(path)
        assert fresh.get(fingerprint) is None
        assert fresh.stats()["corrupt_dropped"] == 1
        assert len(fresh) == 0  # self-healed

    def test_entries_metadata(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        result = _result()
        store.put(_fingerprint(result), result)
        (entry,) = store.entries()
        assert entry["engine"] == "dp"
        assert entry["optimal"] is True
        assert entry["added_cost"] == result.added_cost

    def test_clear_drops_both_tiers(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        result = _result()
        store.put(_fingerprint(result), result)
        assert store.clear() == 1
        assert len(store) == 0
        assert store.get(_fingerprint(result)) is None

    def test_concurrent_writers_same_file(self, tmp_path):
        path = tmp_path / "results.sqlite"
        results = [_result(seed) for seed in range(1, 6)]
        errors = []

        def writer(result):
            try:
                ResultStore(path).put(_fingerprint(result), result)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(r,)) for r in results]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Identical circuits (same seed ordering) may collide on one
        # fingerprint; every distinct fingerprint must be present.
        expected = {_fingerprint(result) for result in results}
        assert set(ResultStore(path).fingerprints()) == expected


class TestCrossProcessPersistence:
    """A store written by one process must serve a fresh process (PR gate)."""

    _WRITE = """
import sys
sys.path.insert(0, {src!r})
from repro.arch.devices import ibm_qx4
from repro.benchlib.generators import random_clifford_t_circuit
from repro.exact.dp_mapper import DPMapper
from repro.service.fingerprint import job_fingerprint
from repro.service.store import ResultStore

circuit = random_clifford_t_circuit(3, 4, 6, seed=42)
result = DPMapper(ibm_qx4()).map(circuit)
fingerprint = job_fingerprint(circuit, ibm_qx4(), "dp", {{}})
ResultStore({path!r}).put(fingerprint, result)
print(fingerprint, result.added_cost)
"""

    _READ = """
import sys
sys.path.insert(0, {src!r})
from repro.service.store import ResultStore

store = ResultStore({path!r})
result = store.get({fingerprint!r})
assert result is not None, "fresh process missed the persisted result"
result.validate()
print(result.added_cost)
"""

    def test_fresh_process_reads_previous_store(self, tmp_path):
        src = str(_REPO_ROOT / "src")
        path = str(tmp_path / "results.sqlite")
        write = subprocess.run(
            [sys.executable, "-c", self._WRITE.format(src=src, path=path)],
            capture_output=True, text=True, check=True,
        )
        fingerprint, added_cost = write.stdout.split()
        read = subprocess.run(
            [sys.executable, "-c",
             self._READ.format(src=src, path=path, fingerprint=fingerprint)],
            capture_output=True, text=True, check=True,
        )
        assert read.stdout.strip() == added_cost


class TestTTLExpiry:
    """``ttl_seconds``: expired rows read as misses and are purged lazily."""

    def test_expired_entries_read_as_misses(self, tmp_path):
        store = ResultStore(tmp_path / "r.sqlite", ttl_seconds=60.0)
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        assert store.get(fingerprint) is not None

        # Age the row below the cutoff instead of sleeping.
        import sqlite3, time as _time
        with sqlite3.connect(str(tmp_path / "r.sqlite")) as conn:
            conn.execute(
                "UPDATE results SET created_at = ?", (_time.time() - 120,)
            )
        aged = ResultStore(tmp_path / "r.sqlite", ttl_seconds=60.0)
        assert aged.get(fingerprint) is None
        assert aged.stats()["expired_dropped"] == 1
        # Lazy purge: the row is gone for good, even without a TTL.
        assert ResultStore(tmp_path / "r.sqlite").get(fingerprint) is None

    def test_memory_tier_honours_ttl(self):
        store = ResultStore(ttl_seconds=60.0)
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        assert store.get(fingerprint) is not None
        # Age the in-memory entry directly.
        with store._lock:
            store._memory[fingerprint].created_at -= 120
        assert store.get(fingerprint) is None
        assert fingerprint not in store

    def test_expired_purge_spares_concurrently_refreshed_rows(self, tmp_path):
        """A stale memory entry must not delete another writer's fresh row."""
        path = tmp_path / "r.sqlite"
        reader = ResultStore(path, ttl_seconds=60.0)
        writer = ResultStore(path, ttl_seconds=60.0)
        result = _result()
        fingerprint = _fingerprint(result)
        reader.put(fingerprint, result)
        # Age only the reader's in-memory view; then the other handle
        # re-puts a fresh row (fresh created_at on disk).
        with reader._lock:
            reader._memory[fingerprint].created_at -= 120
        writer.put(fingerprint, result)
        # The reader's lazy purge fires, but the guarded DELETE must leave
        # the refreshed row alone — and the same call falls through to the
        # disk tier and serves it.
        assert reader.get(fingerprint) is not None
        assert reader.stats()["expired_dropped"] == 1
        assert reader.stats()["disk_hits"] == 1

    def test_contains_honours_ttl(self, tmp_path):
        store = ResultStore(
            tmp_path / "r.sqlite", ttl_seconds=60.0, max_memory_entries=0
        )
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        assert fingerprint in store
        import sqlite3, time as _time
        with sqlite3.connect(str(tmp_path / "r.sqlite")) as conn:
            conn.execute(
                "UPDATE results SET created_at = ?", (_time.time() - 120,)
            )
        assert fingerprint not in store

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultStore(ttl_seconds=0)
        with pytest.raises(ValueError):
            ResultStore().prune(ttl_seconds=-1)

    def test_prune_sweeps_expired_rows(self, tmp_path):
        store = ResultStore(tmp_path / "r.sqlite")
        fresh, stale = _result(seed=1), _result(seed=2)
        store.put(_fingerprint(fresh), fresh)
        store.put(_fingerprint(stale), stale)
        import sqlite3, time as _time
        with sqlite3.connect(str(tmp_path / "r.sqlite")) as conn:
            conn.execute(
                "UPDATE results SET created_at = ? WHERE fingerprint = ?",
                (_time.time() - 120, _fingerprint(stale)),
            )
        reopened = ResultStore(tmp_path / "r.sqlite")
        assert reopened.prune(ttl_seconds=60.0) == 1
        assert reopened.get(_fingerprint(stale)) is None
        assert reopened.get(_fingerprint(fresh)) is not None

    def test_prune_without_ttl_is_a_noop(self):
        store = ResultStore()
        result = _result()
        store.put(_fingerprint(result), result)
        assert store.prune() == 0
        assert len(store) == 1

    def test_prune_report_counts_rows_and_bytes(self, tmp_path):
        store = ResultStore(tmp_path / "r.sqlite")
        fresh, stale = _result(seed=1), _result(seed=2)
        store.put(_fingerprint(fresh), fresh)
        store.put(_fingerprint(stale), stale)
        import sqlite3, time as _time
        with sqlite3.connect(str(tmp_path / "r.sqlite")) as conn:
            conn.execute(
                "UPDATE results SET created_at = ? WHERE fingerprint = ?",
                (_time.time() - 120, _fingerprint(stale)),
            )
        reopened = ResultStore(tmp_path / "r.sqlite")
        report = reopened.prune_report(ttl_seconds=60.0)
        assert report["rows_pruned"] == 1
        assert report["bytes_reclaimed"] > 0
        assert report["persistent"] is True
        assert report["ttl_seconds"] == 60.0
        # Nothing left to reclaim on a second sweep.
        again = reopened.prune_report(ttl_seconds=60.0)
        assert again["rows_pruned"] == 0
        assert again["bytes_reclaimed"] == 0

    def test_drop_memory_evicts_lru_but_keeps_disk(self, tmp_path):
        store = ResultStore(tmp_path / "r.sqlite")
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        assert store.drop_memory() == 1
        assert store.stats()["memory_entries"] == 0
        assert store.stats()["disk_entries"] == 1
        # The next get repopulates from disk: nothing was lost.
        assert store.get(fingerprint) is not None
        # Memory-only store: dropping the LRU is a real invalidation.
        ephemeral = ResultStore()
        ephemeral.put(fingerprint, result)
        assert ephemeral.drop_memory() == 1
        assert ephemeral.get(fingerprint) is None


class TestDeleteAndBoundLookup:
    def test_delete_removes_both_tiers(self, tmp_path):
        store = ResultStore(tmp_path / "r.sqlite")
        result = _result()
        fingerprint = _fingerprint(result)
        store.put(fingerprint, result)
        assert store.delete(fingerprint)
        assert store.get(fingerprint) is None
        assert not store.delete(fingerprint)

    def test_best_added_cost_across_engines(self, tmp_path):
        from repro.service.fingerprint import coupling_fingerprint

        store = ResultStore(tmp_path / "r.sqlite")
        result = _result()
        circuit = result.original_circuit
        circuit_fp = circuit.fingerprint()
        arch_fp = coupling_fingerprint(ibm_qx4())
        assert store.best_added_cost(circuit_fp, arch_fp) is None
        store.put(
            job_fingerprint(circuit, ibm_qx4(), "dp", {}), result,
            circuit_fp=circuit_fp, arch_fp=arch_fp,
        )
        store.put(
            job_fingerprint(circuit, ibm_qx4(), "sat", {}), result,
            circuit_fp=circuit_fp, arch_fp=arch_fp,
        )
        assert store.best_added_cost(circuit_fp, arch_fp) == result.added_cost
        assert store.best_added_cost("nope", arch_fp) is None
        # A fresh process sees the same bound (it lives in the columns).
        assert (
            ResultStore(tmp_path / "r.sqlite").best_added_cost(circuit_fp, arch_fp)
            == result.added_cost
        )

    def test_memory_only_store_serves_bounds(self):
        from repro.service.fingerprint import coupling_fingerprint

        store = ResultStore()
        result = _result()
        circuit_fp = result.original_circuit.fingerprint()
        arch_fp = coupling_fingerprint(ibm_qx4())
        store.put(_fingerprint(result), result,
                  circuit_fp=circuit_fp, arch_fp=arch_fp)
        assert store.best_added_cost(circuit_fp, arch_fp) == result.added_cost


class TestSchemaMigration:
    """Legacy databases (no fingerprint columns) are migrated in place."""

    def _legacy_db(self, path, result, fingerprint):
        import sqlite3, time as _time

        with sqlite3.connect(str(path)) as conn:
            conn.execute(
                "CREATE TABLE results ("
                "fingerprint TEXT PRIMARY KEY, payload TEXT NOT NULL, "
                "engine TEXT NOT NULL, added_cost INTEGER NOT NULL, "
                "optimal INTEGER NOT NULL, created_at REAL NOT NULL)"
            )
            conn.execute(
                "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?)",
                (fingerprint, json.dumps(result.to_dict()), result.engine,
                 result.added_cost, int(result.optimal), _time.time()),
            )

    def test_legacy_rows_still_serve_exact_hits(self, tmp_path):
        result = _result()
        fingerprint = _fingerprint(result)
        path = tmp_path / "legacy.sqlite"
        self._legacy_db(path, result, fingerprint)

        store = ResultStore(path)
        served = store.get(fingerprint)
        assert served is not None
        assert served.added_cost == result.added_cost

    def test_legacy_rows_do_not_serve_bound_lookups(self, tmp_path):
        from repro.service.fingerprint import coupling_fingerprint

        result = _result()
        path = tmp_path / "legacy.sqlite"
        self._legacy_db(path, result, _fingerprint(result))
        store = ResultStore(path)
        assert store.best_added_cost(
            result.original_circuit.fingerprint(),
            coupling_fingerprint(ibm_qx4()),
        ) is None
        # New writes on the migrated file do serve bounds.
        circuit_fp = result.original_circuit.fingerprint()
        arch_fp = coupling_fingerprint(ibm_qx4())
        store.put(
            job_fingerprint(result.original_circuit, ibm_qx4(), "sat", {}),
            result, circuit_fp=circuit_fp, arch_fp=arch_fp,
        )
        assert store.best_added_cost(circuit_fp, arch_fp) == result.added_cost
