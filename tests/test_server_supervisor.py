"""End-to-end tests of the multi-process supervisor.

Each test boots a real supervisor with real worker subprocesses
(``python -m repro.server.worker``) over a shared on-disk result store, and
talks to the public port through the project's own HTTP/WebSocket client
plumbing — the full acceptance path of the network serving layer.
"""

import asyncio
import json
import os
import signal
import time

from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_circuit,
)
from repro.circuit.qasm.writer import to_qasm
from repro.server import wire
from repro.server.supervisor import Supervisor

QASM_SECOND = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[0],q[2];
cx q[3],q[0];
cx q[1],q[2];
cx q[2],q[0];
"""


def run(coroutine):
    return asyncio.run(coroutine)


async def _request(port, method, target, body=None, timeout=120.0):
    status, _headers, payload = await wire.http_request(
        "127.0.0.1", port, method, target, body=body, timeout=timeout
    )
    return status, json.loads(payload)


def _submit_body(qasm, name):
    return json.dumps(
        {
            "type": "submit-request",
            "version": 1,
            "payload": {
                "qasm": qasm,
                "arch": "ibm_qx4",
                "engine": "dp",
                "circuit_name": name,
            },
        }
    ).encode()


class TestSupervisorEndToEnd:
    def test_paper_example_cache_hit_and_stream(self, tmp_path):
        """The PR's acceptance scenario against a 2-worker supervisor.

        The paper example maps to its known minimal cost over HTTP; a
        resubmission is served from the shared store as a cache hit; and
        the fanned-in WebSocket stream reports both jobs' transitions with
        worker-namespaced ids.
        """

        async def scenario():
            async with Supervisor(
                workers=2, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                stream = await wire.open_websocket(
                    "127.0.0.1", port, "/v1/stream"
                )
                paper_qasm = to_qasm(paper_example_circuit())

                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(paper_qasm, "paper_example"),
                )
                first_id = envelope["payload"]["job_id"]
                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{first_id}/result?wait=120"
                )
                assert status == 200
                result = envelope["payload"]["result"]
                assert result["optimal"] is True
                assert result["objective"] == PAPER_EXAMPLE_MINIMAL_COST

                # Same circuit again: whichever worker it routes to, the
                # shared SQLite store answers without re-solving.
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(paper_qasm, "paper_example"),
                )
                second_id = envelope["payload"]["job_id"]
                assert second_id != first_id
                _status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{second_id}/result?wait=120"
                )
                assert envelope["payload"]["provenance"]["cache_hit"] is True

                transitions = {first_id: [], second_id: []}
                deadline = time.monotonic() + 30
                while (
                    "done" not in transitions[first_id]
                    or "done" not in transitions[second_id]
                ):
                    assert time.monotonic() < deadline, transitions
                    message = await asyncio.wait_for(
                        stream.receive(), timeout=10
                    )
                    assert message is not None
                    event = json.loads(message)
                    assert event["type"] == "stream-event"
                    payload = event["payload"]
                    if payload["job_id"] in transitions:
                        transitions[payload["job_id"]].append(
                            payload["status"]
                        )
                await stream.close()
                assert transitions[first_id][0] == "queued"
                assert transitions[first_id][-1] == "done"
                # Every public job id carries its worker's namespace.
                assert all("-job-" in job_id for job_id in transitions)

        run(scenario())

    def test_stream_reconnect_catches_up_via_since_cursor(self, tmp_path):
        """A late subscriber replays missed transitions with ``?since=<seq>``.

        The first job runs to completion with *no* subscriber attached; a
        fresh connection with ``?since=0`` then replays the full retained
        ring (queued → done for the first job), and a reconnect carrying
        the last seen cursor receives only the second job's transitions.
        """

        async def scenario():
            async with Supervisor(
                workers=1, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                paper_qasm = to_qasm(paper_example_circuit())

                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(paper_qasm, "before_subscribe"),
                )
                first_id = envelope["payload"]["job_id"]
                status, _envelope = await _request(
                    port, "GET", f"/v1/jobs/{first_id}/result?wait=120"
                )
                assert status == 200

                # Give the fan-in pump a moment to mirror the transitions
                # into the replay ring.
                deadline = time.monotonic() + 10
                while supervisor._stream_seq == 0:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.05)

                # Late subscriber: the job already finished, yet ?since=0
                # replays its whole history in seq order.
                stream = await wire.open_websocket(
                    "127.0.0.1", port, "/v1/stream?since=0"
                )
                statuses = []
                last_seq = 0
                while "done" not in statuses:
                    message = await asyncio.wait_for(
                        stream.receive(), timeout=10
                    )
                    assert message is not None
                    event = json.loads(message)
                    assert event["seq"] > last_seq
                    last_seq = event["seq"]
                    if event["payload"]["job_id"] == first_id:
                        statuses.append(event["payload"]["status"])
                await stream.close()
                assert statuses[0] == "queued"
                assert statuses[-1] == "done"

                # Second job while disconnected, then reconnect with the
                # last seen cursor: only newer transitions arrive.
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(QASM_SECOND, "after_reconnect"),
                )
                second_id = envelope["payload"]["job_id"]
                status, _envelope = await _request(
                    port, "GET", f"/v1/jobs/{second_id}/result?wait=120"
                )
                assert status == 200

                stream = await wire.open_websocket(
                    "127.0.0.1", port, f"/v1/stream?since={last_seq}"
                )
                catch_up = []
                while "done" not in catch_up:
                    message = await asyncio.wait_for(
                        stream.receive(), timeout=10
                    )
                    assert message is not None
                    event = json.loads(message)
                    assert event["seq"] > last_seq
                    assert event["payload"]["job_id"] == second_id
                    catch_up.append(event["payload"]["status"])
                await stream.close()
                assert catch_up[0] == "queued"
                assert catch_up[-1] == "done"

        run(scenario())

    def test_routing_spreads_and_stats_aggregate(self, tmp_path):
        async def scenario():
            async with Supervisor(
                workers=2, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                ids = []
                for index, qasm in enumerate(
                    (to_qasm(paper_example_circuit()), QASM_SECOND)
                ):
                    _status, envelope = await _request(
                        port, "POST", "/v1/jobs",
                        _submit_body(qasm, f"spread_{index}"),
                    )
                    ids.append(envelope["payload"]["job_id"])
                for job_id in ids:
                    status, _envelope = await _request(
                        port, "GET", f"/v1/jobs/{job_id}/result?wait=120"
                    )
                    assert status == 200
                # Two back-to-back submissions land on two distinct workers
                # (load-aware routing with an optimistic depth bump).
                assert {job_id.split("-", 1)[0] for job_id in ids} == {
                    "w0", "w1"
                }

                status, envelope = await _request(port, "GET", "/v1/stats")
                assert status == 200
                payload = envelope["payload"]
                assert payload["role"] == "supervisor"
                assert payload["stats"]["workers"] == 2
                assert set(payload["workers"]) == {"w0", "w1"}
                submitted = sum(
                    worker_stats["submitted"]
                    for worker_stats in payload["workers"].values()
                )
                assert submitted == 2

                # The invalidation broadcast reaches every worker's LRU.
                status, envelope = await _request(
                    port, "POST", "/v1/cache/prune", b""
                )
                assert status == 200
                report = envelope["payload"]
                assert set(report["per_worker"]) == {"w0", "w1"}
                assert report["memory_dropped"] >= 1

        run(scenario())

    def test_killed_worker_restarts_and_serves_again(self, tmp_path):
        """kill -9 on a worker: the supervisor restarts it, no job is lost.

        Completed results live in the shared store; the restarted worker
        keeps serving new submissions under the same worker id.
        """

        async def scenario():
            async with Supervisor(
                workers=2, engine="dp", cache_dir=str(tmp_path)
            ) as supervisor:
                port = supervisor.port
                paper_qasm = to_qasm(paper_example_circuit())
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(paper_qasm, "pre_kill"),
                )
                job_id = envelope["payload"]["job_id"]
                status, _envelope = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/result?wait=120"
                )
                assert status == 200

                victim = supervisor.workers[0]
                old_pid = victim.pid
                os.kill(old_pid, signal.SIGKILL)

                deadline = time.monotonic() + 60
                while not (victim.healthy and victim.pid != old_pid):
                    assert time.monotonic() < deadline, "no restart observed"
                    await asyncio.sleep(0.25)
                assert victim.restarts >= 1

                # The fleet keeps serving; the pre-kill result survives in
                # the shared store, so this resubmission is a cache hit even
                # if it routes to the freshly restarted worker.
                _status, envelope = await _request(
                    port, "POST", "/v1/jobs",
                    _submit_body(paper_qasm, "post_kill"),
                )
                new_id = envelope["payload"]["job_id"]
                status, envelope = await _request(
                    port, "GET", f"/v1/jobs/{new_id}/result?wait=120"
                )
                assert status == 200
                assert envelope["payload"]["provenance"]["cache_hit"] is True

                status, envelope = await _request(port, "GET", "/v1/healthz")
                assert status == 200
                assert envelope["payload"]["ok"] is True
                workers = envelope["payload"]["workers"]
                assert workers["w0"]["restarts"] >= 1

        run(scenario())
