"""Unit and exhaustive tests for cardinality and pseudo-Boolean encodings."""

import itertools

import pytest

from repro.sat.cardinality import (
    at_most_k_sequential,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
)
from repro.sat.cnf import CNF
from repro.sat.pb import PBError, encode_pb_leq, evaluate_pb
from repro.sat.solver import CDCLSolver, SolverResult


def count_models_projected(cnf, projection_vars):
    """Enumerate models of *cnf* projected onto *projection_vars* by brute force."""
    solutions = set()
    all_vars = list(range(1, cnf.num_vars + 1))
    for bits in itertools.product([False, True], repeat=len(all_vars)):
        assignment = dict(zip(all_vars, bits))
        if cnf.evaluate(assignment):
            solutions.add(tuple(assignment[v] for v in projection_vars))
    return solutions


class TestAtMostOne:
    @pytest.mark.parametrize("encode", ["pairwise", "sequential"])
    @pytest.mark.parametrize("count", [2, 3, 5, 6])
    def test_projected_models_match_semantics(self, encode, count):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(count)]
        if encode == "pairwise":
            at_most_one_pairwise(cnf, literals)
        else:
            at_most_one_sequential(cnf, literals)
        models = count_models_projected(cnf, literals)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=count)
            if sum(bits) <= 1
        }
        assert models == expected

    def test_exactly_one_semantics(self):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(4)]
        exactly_one(cnf, literals)
        models = count_models_projected(cnf, literals)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=4)
            if sum(bits) == 1
        }
        assert models == expected

    def test_exactly_one_empty_raises(self):
        with pytest.raises(ValueError):
            exactly_one(CNF(), [])

    def test_exactly_one_unknown_encoding(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            exactly_one(cnf, [cnf.new_var()], encoding="magic")


class TestAtMostK:
    @pytest.mark.parametrize("count,bound", [(4, 2), (5, 1), (5, 3), (3, 0)])
    def test_projected_models_match_semantics(self, count, bound):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(count)]
        at_most_k_sequential(cnf, literals, bound)
        models = count_models_projected(cnf, literals)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=count)
            if sum(bits) <= bound
        }
        assert models == expected

    def test_bound_larger_than_count_adds_nothing(self):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(3)]
        at_most_k_sequential(cnf, literals, 5)
        assert cnf.num_clauses == 0

    def test_negative_bound_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            at_most_k_sequential(cnf, [cnf.new_var()], -1)


class TestPseudoBoolean:
    @pytest.mark.parametrize(
        "weights,bound",
        [
            ([3, 5, 7], 7),
            ([3, 5, 7], 8),
            ([1, 1, 1, 1], 2),
            ([4, 4, 4], 0),
            ([2, 3, 4, 5], 6),
        ],
    )
    def test_projected_models_match_semantics(self, weights, bound):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(len(weights))]
        encode_pb_leq(cnf, list(zip(weights, literals)), bound)
        models = count_models_projected(cnf, literals)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=len(weights))
            if sum(w for w, b in zip(weights, bits) if b) <= bound
        }
        assert models == expected

    def test_trivially_satisfied_bound_adds_nothing(self):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(3)]
        encode_pb_leq(cnf, [(1, lit) for lit in literals], 10)
        assert cnf.num_clauses == 0

    def test_negative_weight_rejected(self):
        cnf = CNF()
        with pytest.raises(PBError):
            encode_pb_leq(cnf, [(-1, cnf.new_var())], 3)

    def test_negative_bound_rejected(self):
        cnf = CNF()
        with pytest.raises(PBError):
            encode_pb_leq(cnf, [(1, cnf.new_var())], -1)

    def test_zero_weight_terms_ignored(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        encode_pb_leq(cnf, [(0, a), (5, b)], 3)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.add_clause([a])
        assert solver.solve() is SolverResult.SAT

    def test_evaluate_pb_handles_negative_literals(self):
        assert evaluate_pb([(3, 1), (5, -2)], {1: True, 2: False}) == 8
        assert evaluate_pb([(3, 1), (5, -2)], {1: False, 2: True}) == 0

    def test_with_solver_enforces_bound(self):
        cnf = CNF()
        literals = [cnf.new_var() for _ in range(4)]
        weights = [7, 7, 4, 4]
        # Force the two cheap literals true, then bound the sum below 11+7.
        encode_pb_leq(cnf, list(zip(weights, literals)), 15)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.add_clause([literals[2]])
        solver.add_clause([literals[3]])
        assert solver.solve() is SolverResult.SAT
        model = solver.model()
        total = sum(w for w, lit in zip(weights, literals) if model[lit])
        assert total <= 15
