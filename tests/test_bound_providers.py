"""Tests for the BoundProvider chain and its pipeline/service wiring."""

import asyncio

import pytest

from repro.arch.coupling import CouplingMap
from repro.arch.devices import ibm_qx4
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_cnot_skeleton,
)
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.pipeline.bounds import (
    BoundProviderChain,
    HeuristicBoundProvider,
    StaticBoundProvider,
    StoreBoundProvider,
    is_sub_architecture,
)
from repro.pipeline.pipeline import MappingPipeline
from repro.service.fingerprint import coupling_fingerprint, job_fingerprint
from repro.service.service import MappingService
from repro.service.store import ResultStore


def _paper_circuit():
    return paper_example_cnot_skeleton()


def _stored_dp_result(store, circuit, coupling, engine="dp"):
    """Solve with DP and persist the result with full fingerprint metadata."""
    result = DPMapper(coupling).map(circuit)
    fingerprint = job_fingerprint(circuit, coupling, engine, {})
    store.put(
        fingerprint, result,
        circuit_fp=circuit.fingerprint(),
        arch_fp=coupling_fingerprint(coupling),
    )
    return result, fingerprint


class TestProviders:
    def test_static_provider(self):
        provider = StaticBoundProvider(7)
        assert provider.upper_bound(_paper_circuit(), ibm_qx4()) == 7

    def test_static_provider_rejects_negative(self):
        with pytest.raises(ValueError):
            StaticBoundProvider(-1)

    def test_heuristic_provider_returns_valid_bound(self):
        circuit = _paper_circuit()
        bound = HeuristicBoundProvider().upper_bound(circuit, ibm_qx4())
        assert bound is not None
        assert bound >= PAPER_EXAMPLE_MINIMAL_COST

    def test_heuristic_provider_swallows_failures(self):
        # A circuit too large for the device must yield "no bound", not raise.
        big = QuantumCircuit(9)
        big.cx(0, 8)
        assert HeuristicBoundProvider().upper_bound(big, ibm_qx4()) is None

    def test_store_provider_same_architecture(self):
        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        provider = StoreBoundProvider(store)
        assert provider.upper_bound(circuit, ibm_qx4()) == result.added_cost
        other = QuantumCircuit(2)
        other.cx(0, 1)
        assert provider.upper_bound(other, ibm_qx4()) is None

    def test_chain_keeps_tightest_bound(self):
        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        chain = BoundProviderChain([
            StaticBoundProvider(result.added_cost + 10),
            StoreBoundProvider(store),
        ])
        bound, provider = chain.resolve(circuit, ibm_qx4())
        assert bound == result.added_cost
        assert provider == "store"

    def test_chain_with_no_information(self):
        chain = BoundProviderChain([StoreBoundProvider(ResultStore())])
        bound, provider = chain.resolve(_paper_circuit(), ibm_qx4())
        assert bound is None and provider is None


class TestSubArchitectures:
    def _line(self):
        return CouplingMap(3, [(0, 1), (1, 2)], name="line3")

    def _extended(self):
        # The line plus an extra qubit and couplings: a strict super-graph.
        return CouplingMap(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="ring4")

    def test_is_sub_architecture(self):
        assert is_sub_architecture(self._line(), self._extended())
        assert not is_sub_architecture(self._extended(), self._line())
        # Same qubit count but a non-subset edge is not a sub-architecture.
        rotated = CouplingMap(3, [(1, 0), (1, 2)])
        assert not is_sub_architecture(rotated, self._line())

    def test_store_bound_from_sub_architecture(self):
        store = ResultStore()
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        line = self._line()
        result, _ = _stored_dp_result(store, circuit, line)
        # Nothing stored for the big device itself, but the line result is a
        # valid mapping on the super-graph, so its cost seeds the bound.
        provider = StoreBoundProvider(store, couplings=[line])
        assert provider.upper_bound(circuit, self._extended()) == result.added_cost
        # Without the sub-architecture hint the store has nothing to offer.
        assert StoreBoundProvider(store).upper_bound(
            circuit, self._extended()
        ) is None


class TestPipelineSeeding:
    def test_sat_map_is_seeded_from_store(self):
        store = ResultStore()
        circuit = _paper_circuit()
        dp_result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == dp_result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.optimal
        assert result.statistics["seeded_upper_bound"] == dp_result.added_cost
        assert result.statistics["bound_provider"] == "store"
        assert result.statistics["external_bound"] == dp_result.added_cost

    def test_seeded_solve_uses_fewer_iterations(self):
        store = ResultStore()
        circuit = _paper_circuit()
        _stored_dp_result(store, circuit, ibm_qx4())
        unseeded = MappingPipeline(ibm_qx4(), engine="sat").map(circuit)
        seeded = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[StoreBoundProvider(store)],
        ).map(circuit)
        assert seeded.added_cost == unseeded.added_cost
        assert (
            seeded.statistics["solver_iterations"]
            < unseeded.statistics["solver_iterations"]
        )

    def test_restricted_strategies_are_not_seeded(self):
        # An externally derived bound may undercut a restricted search
        # space's own minimum; such engines must be mapped unseeded.
        store = ResultStore()
        circuit = _paper_circuit()
        _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            engine_options={"strategy": "odd"},
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert "seeded_upper_bound" not in result.statistics
        assert "external_bound" not in result.statistics

    def test_subset_mode_is_not_seeded(self):
        store = ResultStore()
        circuit = _paper_circuit()
        _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            engine_options={"use_subsets": True},
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert "external_bound" not in result.statistics

    def test_portfolio_accepts_external_bound(self):
        store = ResultStore()
        circuit = _paper_circuit()
        dp_result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="portfolio",
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == dp_result.added_cost
        # The stored exact bound is tighter than the heuristic's, so it wins.
        assert result.statistics["portfolio_bound"] == dp_result.added_cost
        assert result.statistics["portfolio_external_bound"] == dp_result.added_cost

    def test_map_many_seeds_each_item(self):
        store = ResultStore()
        circuits = [_paper_circuit(), _paper_circuit()]
        dp_result, _ = _stored_dp_result(store, circuits[0], ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[StoreBoundProvider(store)],
        )
        items = pipeline.map_many(circuits, workers=2)
        assert all(item.ok for item in items)
        for item in items:
            assert item.result.added_cost == dp_result.added_cost
            assert item.result.statistics["external_bound"] == dp_result.added_cost


class TestServiceBoundSeeding:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_resubmit_after_cleared_entry_is_reseeded(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(ibm_qx4(), engine="dp", store=store) as service:
                dp_job = await service.submit(circuit)
                dp_result = await service.result(dp_job)

                sat_job = await service.submit(circuit, engine="sat")
                await service.result(sat_job)
                sat_fp = service.status(sat_job)["fingerprint"]

                # Clear the solved SAT entry, resubmit: the job must solve
                # again (no cache hit) but the BoundProvider chain still
                # seeds its bound from the DP row of the same circuit.
                assert store.delete(sat_fp)
                resubmit = await service.submit(circuit, engine="sat")
                result = await service.result(resubmit)
                provenance = service.status(resubmit)["provenance"]
                assert provenance["cache_hit"] is False
                assert provenance["seeded_bound"] == dp_result.added_cost
                assert provenance["bound_provider"] == "store"
                assert result.added_cost == dp_result.added_cost
                assert result.statistics["seeded_upper_bound"] == dp_result.added_cost
                return result

        result = self._run(scenario())
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST

    def test_seeding_can_be_disabled(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(
                ibm_qx4(), engine="dp", store=store, seed_bounds=False
            ) as service:
                await service.result(await service.submit(circuit))
                sat_job = await service.submit(circuit, engine="sat")
                await service.result(sat_job)
                return service.status(sat_job)["provenance"]

        provenance = self._run(scenario())
        assert "seeded_bound" not in provenance

    def test_cross_engine_warm_start_on_first_sat_submit(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(ibm_qx4(), engine="dp", store=store) as service:
                dp_result = await service.result(await service.submit(circuit))
                sat_job = await service.submit(circuit, engine="sat")
                sat_result = await service.result(sat_job)
                provenance = service.status(sat_job)["provenance"]
                assert provenance["seeded_bound"] == dp_result.added_cost
                assert sat_result.added_cost == dp_result.added_cost
                return sat_result

        result = self._run(scenario())
        assert result.statistics["solver_iterations"] <= 2
