"""Tests for the BoundProvider chain and its pipeline/service wiring."""

import asyncio

import pytest

from repro.arch.coupling import CouplingMap
from repro.arch.devices import ibm_qx4
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_cnot_skeleton,
)
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.pipeline.bounds import (
    BoundProviderChain,
    HeuristicBoundProvider,
    StaticBoundProvider,
    StoreBoundProvider,
    is_sub_architecture,
)
from repro.pipeline.pipeline import MappingPipeline
from repro.service.fingerprint import coupling_fingerprint, job_fingerprint
from repro.service.service import MappingService
from repro.service.store import ResultStore


def _paper_circuit():
    return paper_example_cnot_skeleton()


def _stored_dp_result(store, circuit, coupling, engine="dp"):
    """Solve with DP and persist the result with full fingerprint metadata."""
    result = DPMapper(coupling).map(circuit)
    fingerprint = job_fingerprint(circuit, coupling, engine, {})
    store.put(
        fingerprint, result,
        circuit_fp=circuit.fingerprint(),
        arch_fp=coupling_fingerprint(coupling),
    )
    return result, fingerprint


class TestProviders:
    def test_static_provider(self):
        provider = StaticBoundProvider(7)
        assert provider.upper_bound(_paper_circuit(), ibm_qx4()) == 7

    def test_static_provider_rejects_negative(self):
        with pytest.raises(ValueError):
            StaticBoundProvider(-1)

    def test_heuristic_provider_returns_valid_bound(self):
        circuit = _paper_circuit()
        bound = HeuristicBoundProvider().upper_bound(circuit, ibm_qx4())
        assert bound is not None
        assert bound >= PAPER_EXAMPLE_MINIMAL_COST

    def test_heuristic_provider_swallows_failures(self):
        # A circuit too large for the device must yield "no bound", not raise.
        big = QuantumCircuit(9)
        big.cx(0, 8)
        assert HeuristicBoundProvider().upper_bound(big, ibm_qx4()) is None

    def test_store_provider_same_architecture(self):
        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        provider = StoreBoundProvider(store)
        assert provider.upper_bound(circuit, ibm_qx4()) == result.added_cost
        other = QuantumCircuit(2)
        other.cx(0, 1)
        assert provider.upper_bound(other, ibm_qx4()) is None

    def test_chain_keeps_tightest_bound(self):
        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        chain = BoundProviderChain([
            StaticBoundProvider(result.added_cost + 10),
            StoreBoundProvider(store),
        ])
        bound, provider = chain.resolve(circuit, ibm_qx4())
        assert bound == result.added_cost
        assert provider == "store"

    def test_chain_with_no_information(self):
        chain = BoundProviderChain([StoreBoundProvider(ResultStore())])
        bound, provider = chain.resolve(_paper_circuit(), ibm_qx4())
        assert bound is None and provider is None


class TestSubArchitectures:
    def _line(self):
        return CouplingMap(3, [(0, 1), (1, 2)], name="line3")

    def _extended(self):
        # The line plus an extra qubit and couplings: a strict super-graph.
        return CouplingMap(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="ring4")

    def test_is_sub_architecture(self):
        assert is_sub_architecture(self._line(), self._extended())
        assert not is_sub_architecture(self._extended(), self._line())
        # Same qubit count but a non-subset edge is not a sub-architecture.
        rotated = CouplingMap(3, [(1, 0), (1, 2)])
        assert not is_sub_architecture(rotated, self._line())

    def test_store_bound_from_sub_architecture(self):
        store = ResultStore()
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        line = self._line()
        result, _ = _stored_dp_result(store, circuit, line)
        # Nothing stored for the big device itself, but the line result is a
        # valid mapping on the super-graph, so its cost seeds the bound.
        provider = StoreBoundProvider(store, couplings=[line])
        assert provider.upper_bound(circuit, self._extended()) == result.added_cost
        # Without the sub-architecture hint the store has nothing to offer.
        assert StoreBoundProvider(store).upper_bound(
            circuit, self._extended()
        ) is None


class TestPipelineSeeding:
    def test_sat_map_is_seeded_from_store(self):
        store = ResultStore()
        circuit = _paper_circuit()
        dp_result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == dp_result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.optimal
        assert result.statistics["seeded_upper_bound"] == dp_result.added_cost
        assert result.statistics["bound_provider"] == "store"
        assert result.statistics["external_bound"] == dp_result.added_cost

    def test_seeded_solve_uses_fewer_iterations(self):
        store = ResultStore()
        circuit = _paper_circuit()
        _stored_dp_result(store, circuit, ibm_qx4())
        unseeded = MappingPipeline(ibm_qx4(), engine="sat").map(circuit)
        seeded = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[StoreBoundProvider(store)],
        ).map(circuit)
        assert seeded.added_cost == unseeded.added_cost
        assert (
            seeded.statistics["solver_iterations"]
            < unseeded.statistics["solver_iterations"]
        )

    def test_restricted_strategies_are_not_seeded(self):
        # An externally derived bound may undercut a restricted search
        # space's own minimum; such engines must be mapped unseeded.
        store = ResultStore()
        circuit = _paper_circuit()
        _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            engine_options={"strategy": "odd"},
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert "seeded_upper_bound" not in result.statistics
        assert "external_bound" not in result.statistics

    def test_subset_mode_is_not_seeded(self):
        store = ResultStore()
        circuit = _paper_circuit()
        _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            engine_options={"use_subsets": True},
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert "external_bound" not in result.statistics

    def test_portfolio_accepts_external_bound(self):
        store = ResultStore()
        circuit = _paper_circuit()
        dp_result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="portfolio",
            bound_providers=[StoreBoundProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == dp_result.added_cost
        # The stored exact bound is tighter than the heuristic's, so it wins.
        assert result.statistics["portfolio_bound"] == dp_result.added_cost
        assert result.statistics["portfolio_external_bound"] == dp_result.added_cost

    def test_map_many_seeds_each_item(self):
        store = ResultStore()
        circuits = [_paper_circuit(), _paper_circuit()]
        dp_result, _ = _stored_dp_result(store, circuits[0], ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[StoreBoundProvider(store)],
        )
        items = pipeline.map_many(circuits, workers=2)
        assert all(item.ok for item in items)
        for item in items:
            assert item.result.added_cost == dp_result.added_cost
            assert item.result.statistics["external_bound"] == dp_result.added_cost


class TestServiceBoundSeeding:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_resubmit_after_cleared_entry_is_reseeded(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(ibm_qx4(), engine="dp", store=store) as service:
                dp_job = await service.submit(circuit)
                dp_result = await service.result(dp_job)

                sat_job = await service.submit(circuit, engine="sat")
                await service.result(sat_job)
                sat_fp = service.status(sat_job)["fingerprint"]

                # Clear the solved SAT entry, resubmit: the job must solve
                # again (no cache hit) but the BoundProvider chain still
                # seeds its bound from the DP row of the same circuit.
                assert store.delete(sat_fp)
                resubmit = await service.submit(circuit, engine="sat")
                result = await service.result(resubmit)
                provenance = service.status(resubmit)["provenance"]
                assert provenance["cache_hit"] is False
                assert provenance["seeded_bound"] == dp_result.added_cost
                # The service's default provider is the ModelProvider, which
                # extends the plain store lookup with schedule replay.
                assert provenance["bound_provider"] == "model"
                assert result.added_cost == dp_result.added_cost
                assert result.statistics["seeded_upper_bound"] == dp_result.added_cost
                return result

        result = self._run(scenario())
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST

    def test_seeding_can_be_disabled(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(
                ibm_qx4(), engine="dp", store=store, seed_bounds=False
            ) as service:
                await service.result(await service.submit(circuit))
                sat_job = await service.submit(circuit, engine="sat")
                await service.result(sat_job)
                return service.status(sat_job)["provenance"]

        provenance = self._run(scenario())
        assert "seeded_bound" not in provenance

    def test_cross_engine_warm_start_on_first_sat_submit(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(ibm_qx4(), engine="dp", store=store) as service:
                dp_result = await service.result(await service.submit(circuit))
                sat_job = await service.submit(circuit, engine="sat")
                sat_result = await service.result(sat_job)
                provenance = service.status(sat_job)["provenance"]
                assert provenance["seeded_bound"] == dp_result.added_cost
                assert sat_result.added_cost == dp_result.added_cost
                return sat_result

        result = self._run(scenario())
        assert result.statistics["solver_iterations"] <= 2


class TestModelProvider:
    """Schedule replay: the cached mapping itself becomes the incumbent."""

    def test_best_result_returns_cheapest_schedule(self):
        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        fetched = store.best_result(
            circuit.fingerprint(), coupling_fingerprint(ibm_qx4())
        )
        assert fetched is not None
        assert fetched.added_cost == result.added_cost
        assert fetched.schedule.mappings == result.schedule.mappings

    def test_best_result_persists_across_store_instances(self, tmp_path):
        path = tmp_path / "results.sqlite"
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(ResultStore(path), circuit, ibm_qx4())
        fresh = ResultStore(path, max_memory_entries=0)
        fetched = fresh.best_result(
            circuit.fingerprint(), coupling_fingerprint(ibm_qx4())
        )
        assert fetched is not None
        assert fetched.schedule.mappings == result.schedule.mappings

    def test_best_result_misses_cleanly(self):
        assert ResultStore().best_result("nope", "nothere") is None

    def test_model_seed_from_same_architecture(self):
        from repro.pipeline.bounds import ModelProvider

        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        seed, notes = ModelProvider(store).model_seed(circuit, ibm_qx4())
        assert notes == []
        assert seed is not None
        assert seed.objective == result.added_cost
        assert seed.source_arch == "same"
        assert list(seed.mappings) == [tuple(m) for m in result.schedule.mappings]

    def test_model_seed_from_sub_architecture_when_schedule_transfers(self):
        from repro.pipeline.bounds import ModelProvider

        # The induced triangle {0,1,2} of QX4 is a sub-architecture under
        # identity labelling, so its schedules run unchanged on the device.
        store = ResultStore()
        qx4 = ibm_qx4()
        triangle = qx4.subgraph((0, 1, 2))
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        result, _ = _stored_dp_result(store, circuit, triangle)
        seed, notes = ModelProvider(store, couplings=[triangle]).model_seed(
            circuit, qx4
        )
        assert seed is not None
        assert seed.source_arch == "sub-architecture"
        assert seed.objective == result.added_cost
        assert notes == []

    def test_model_seed_prefers_cheapest_validating_schedule(self):
        from repro.pipeline.bounds import ModelProvider

        # A same-arch row AND a cheaper sub-arch row whose schedule
        # transfers: the cheaper one must win, not the first-preference one.
        store = ResultStore()
        qx4 = ibm_qx4()
        triangle = qx4.subgraph((0, 1, 2))
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        sub_result, _ = _stored_dp_result(store, circuit, triangle)
        # Fabricate a costlier same-arch row (validation off lets us store
        # a result whose claimed breakdown is higher than optimal).
        import dataclasses

        worse = DPMapper(qx4).map(circuit)
        worse.cost = dataclasses.replace(worse.cost, swaps=worse.cost.swaps + 2)
        lenient = ResultStore(validate=False)
        for row in (worse,):
            lenient.put(
                job_fingerprint(circuit, qx4, "dp", {"padded": True}), row,
                circuit_fp=circuit.fingerprint(),
                arch_fp=coupling_fingerprint(qx4),
            )
        # Merge the two stores' rows into one provider view.
        _stored_dp_result(lenient, circuit, triangle)
        seed, notes = ModelProvider(
            lenient, couplings=[triangle]
        ).model_seed(circuit, qx4)
        assert seed is not None
        assert seed.objective == sub_result.added_cost
        assert seed.source_arch == "sub-architecture"
        assert notes == []

    def test_invalid_cached_schedule_falls_back_to_bound_with_note(self):
        from repro.pipeline.bounds import ModelProvider, BoundProviderChain

        store = ResultStore(validate=False)  # allow the corrupt row in
        circuit = _paper_circuit()
        result, fingerprint = _stored_dp_result(store, circuit, ibm_qx4())
        # Corrupt the schedule: put a CNOT on an uncoupled pair. The cost
        # row still serves as a bound, but the schedule must not be
        # replayed as a model.
        corrupt = DPMapper(ibm_qx4()).map(circuit)
        corrupt.schedule.mappings = [
            (0, 3, 1, 4) for _ in corrupt.schedule.mappings
        ]
        store.put(
            fingerprint, corrupt,
            circuit_fp=circuit.fingerprint(),
            arch_fp=coupling_fingerprint(ibm_qx4()),
        )
        provider = ModelProvider(store)
        seed, notes = provider.model_seed(circuit, ibm_qx4())
        assert seed is None
        assert notes and "does not comply" in notes[0]
        # The chain degrades to bound-only seeding and keeps the notes.
        resolution = BoundProviderChain([provider]).resolve_seed(
            circuit, ibm_qx4()
        )
        assert resolution.bound == result.added_cost
        assert resolution.model is None
        assert resolution.notes

    def test_chain_drops_model_worse_than_bound(self):
        from repro.pipeline.bounds import ModelProvider, BoundProviderChain

        store = ResultStore()
        circuit = _paper_circuit()
        result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        chain = BoundProviderChain([
            ModelProvider(store),
            StaticBoundProvider(result.added_cost - 1),
        ])
        resolution = chain.resolve_seed(circuit, ibm_qx4())
        assert resolution.bound == result.added_cost - 1
        assert resolution.model is None
        assert any("worse than the resolved bound" in n for n in resolution.notes)

    def test_pipeline_model_seeding_end_to_end(self):
        from repro.pipeline.bounds import ModelProvider

        store = ResultStore()
        circuit = _paper_circuit()
        dp_result, _ = _stored_dp_result(store, circuit, ibm_qx4())
        pipeline = MappingPipeline(
            ibm_qx4(), engine="sat",
            bound_providers=[ModelProvider(store)],
        )
        result = pipeline.map(circuit)
        assert result.added_cost == dp_result.added_cost
        assert result.optimal
        assert result.statistics["seeded_model_objective"] == dp_result.added_cost
        assert result.statistics["model_provider"] == "model"
        # Zero descent iterations: the cached schedule was the first
        # feasible solution; only the optimality probe ran.
        assert result.statistics.get("descent_iterations", 0) == 0
        assert result.statistics["solver_iterations"] == 1


class TestServiceModelSeeding:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_resubmission_replays_cached_schedule_as_incumbent(self):
        """Acceptance: store-cached schedule => zero descent iterations."""

        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(ibm_qx4(), engine="sat", store=store) as service:
                # A DP solve leaves a (circuit_fp, arch_fp)-keyed row whose
                # schedule any later exact solve of the same circuit can
                # replay, regardless of engine/options fingerprints.
                dp_job = await service.submit(circuit, engine="dp")
                first_result = await service.result(dp_job)

                sat_job = await service.submit(circuit)
                await service.result(sat_job)
                # Clear the exact SAT fingerprint so the resubmission must
                # solve again; the DP row of the same circuit remains and
                # is found via (circuit_fp, arch_fp).
                fingerprint = service.status(sat_job)["fingerprint"]
                assert store.delete(fingerprint)
                resubmit = await service.submit(circuit)
                result = await service.result(resubmit)
                provenance = service.status(resubmit)["provenance"]
                assert provenance["cache_hit"] is False
                assert provenance["seeded_model"] == first_result.added_cost
                assert provenance["model_provider"] == "model"
                return first_result, result

        first_result, result = self._run(scenario())
        assert result.added_cost == first_result.added_cost
        assert result.optimal
        assert result.statistics.get("descent_iterations", 0) == 0
        assert result.statistics["solver_iterations"] == 1
        assert result.statistics["model_seeded"] == 1

    def test_model_seeding_can_be_disabled_separately(self):
        async def scenario():
            circuit = _paper_circuit()
            store = ResultStore()
            async with MappingService(
                ibm_qx4(), engine="sat", store=store, seed_models=False
            ) as service:
                dp_job = await service.submit(circuit, engine="dp")
                await service.result(dp_job)
                sat_job = await service.submit(circuit)
                result = await service.result(sat_job)
                provenance = service.status(sat_job)["provenance"]
                # Bound seeding still works; model seeding does not.
                assert provenance["seeded_bound"] == result.added_cost
                assert "seeded_model" not in provenance
                return result

        result = self._run(scenario())
        assert "model_seeded" not in result.statistics
