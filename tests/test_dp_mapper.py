"""Unit tests for the dynamic-programming exact mapper."""

import pytest

from repro.arch.devices import ibm_qx2, ibm_qx4, linear_architecture
from repro.benchlib.generators import random_clifford_t_circuit
from repro.benchlib.paper_example import paper_example_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.exact.dp_mapper import DPMapper
from repro.exact.strategies import (
    DisjointQubitsStrategy,
    OddGatesStrategy,
    QubitTriangleStrategy,
)
from repro.sim.equivalence import result_is_equivalent
from repro.verify import verify_result


class TestDPMapperBasics:
    def test_single_cnot_on_coupled_pair_costs_nothing(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert result.added_cost == 0
        assert result.optimal
        assert verify_result(result, ibm_qx4()).compliant

    def test_single_reversed_cnot_costs_at_most_four(self):
        # Any CNOT can be placed on some edge of QX4 in the right direction,
        # so the minimum is 0 for a one-gate circuit.
        circuit = QuantumCircuit(2)
        circuit.cx(1, 0)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert result.added_cost == 0

    def test_reversal_is_needed_on_directed_line(self):
        # On a strictly directed 2-qubit line 0 -> 1, a circuit using both
        # CNOT directions must reverse one of them with 4 Hadamards.
        line = linear_architecture(2)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        result = DPMapper(line).map(circuit)
        assert result.cost.reversals == 1
        assert result.cost.swaps == 0
        assert result.added_cost == 4

    def test_swap_needed_on_line_three(self):
        # Pairwise interactions 0-1, 1-2 and 0-2 cannot be placed on a
        # 3-qubit line without at least one SWAP.
        line = linear_architecture(3, bidirectional=True)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        result = DPMapper(line).map(circuit)
        assert result.cost.swaps >= 1
        assert result.added_cost >= 7
        assert result_is_equivalent(result)

    def test_circuit_without_cnots(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1).x(2)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert result.added_cost == 0
        assert result.mapped_circuit.count_single_qubit() == 3

    def test_too_many_qubits_rejected(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        with pytest.raises(ValueError):
            DPMapper(ibm_qx4()).map(circuit)

    def test_triangle_circuit_on_qx4_costs_only_reversals(self):
        # Three mutually interacting qubits fit on a triangle of QX4, so no
        # SWAP is ever needed; only direction fixes may be required.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 0)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert result.cost.swaps == 0
        assert result.added_cost <= 8


class TestDPMapperEndToEnd:
    def test_paper_example_is_mapped_correctly(self):
        result = DPMapper(ibm_qx4()).map(paper_example_circuit())
        assert result.optimal
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_circuits_are_compliant_and_equivalent(self, seed):
        circuit = random_clifford_t_circuit(4, 5, 8, seed=seed)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert verify_result(result, ibm_qx4()).compliant
        assert result_is_equivalent(result)
        assert result.objective == result.added_cost

    def test_qx2_and_qx4_both_work(self):
        circuit = random_clifford_t_circuit(5, 4, 10, seed=7)
        for device in (ibm_qx2(), ibm_qx4()):
            result = DPMapper(device).map(circuit)
            assert verify_result(result, device).compliant
            assert result_is_equivalent(result)


class TestDPMapperStrategies:
    @pytest.mark.parametrize(
        "strategy_cls", [DisjointQubitsStrategy, OddGatesStrategy, QubitTriangleStrategy]
    )
    def test_restricted_strategies_never_beat_the_minimum(self, strategy_cls):
        circuit = random_clifford_t_circuit(4, 3, 10, seed=13)
        qx4 = ibm_qx4()
        minimal = DPMapper(qx4).map(circuit)
        restricted = DPMapper(qx4, strategy=strategy_cls()).map(circuit)
        assert restricted.added_cost >= minimal.added_cost
        assert not restricted.optimal
        assert result_is_equivalent(restricted)

    def test_restricted_strategy_reports_spot_count(self):
        circuit = random_clifford_t_circuit(4, 0, 9, seed=3)
        result = DPMapper(ibm_qx4(), strategy=OddGatesStrategy()).map(circuit)
        assert result.num_permutation_spots == 5

    def test_objective_matches_reconstructed_cost(self):
        circuit = random_clifford_t_circuit(5, 6, 12, seed=21)
        result = DPMapper(ibm_qx4()).map(circuit)
        assert result.objective == result.added_cost
