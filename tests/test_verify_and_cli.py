"""Unit tests for the verification helpers and the command-line interface."""

import pytest

from repro.arch.devices import ibm_qx4
from repro.benchlib.generators import random_clifford_t_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import to_qasm
from repro.cli import build_parser, main
from repro.exact.dp_mapper import DPMapper
from repro.verify import check_coupling_compliance, count_added_operations, verify_result


class TestCompliance:
    def test_compliant_circuit(self):
        circuit = QuantumCircuit(5)
        circuit.cx(1, 0)
        circuit.cx(3, 4)
        report = check_coupling_compliance(circuit, ibm_qx4())
        assert report.compliant
        assert report.cnot_count == 2

    def test_violations_are_listed(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)  # wrong direction
        circuit.cx(0, 4)  # not coupled at all
        report = check_coupling_compliance(circuit, ibm_qx4())
        assert not report.compliant
        assert (0, 0, 1) in report.violations
        assert (1, 0, 4) in report.violations

    def test_swap_gates_accepted_on_coupled_pairs(self):
        circuit = QuantumCircuit(5)
        circuit.swap(0, 1)
        assert check_coupling_compliance(circuit, ibm_qx4()).compliant
        circuit.swap(0, 4)
        assert not check_coupling_compliance(circuit, ibm_qx4()).compliant

    def test_count_added_operations(self):
        original = QuantumCircuit(2)
        original.cx(0, 1)
        mapped = QuantumCircuit(5)
        mapped.cx(1, 0)
        mapped.h(0)
        mapped.h(1)
        mapped.h(0)
        mapped.h(1)
        assert count_added_operations(original, mapped) == 4

    def test_verify_result_checks_cost_bookkeeping(self):
        circuit = random_clifford_t_circuit(4, 3, 6, seed=1)
        result = DPMapper(ibm_qx4()).map(circuit)
        report = verify_result(result, ibm_qx4())
        assert report.compliant


class TestCLI:
    def _write_qasm(self, tmp_path, circuit):
        path = tmp_path / "circuit.qasm"
        path.write_text(to_qasm(circuit))
        return str(path)

    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["file.qasm"])
        assert args.arch == "ibm_qx4"
        assert args.engine == "dp"

    def test_dp_engine_end_to_end(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main([path, "--arch", "qx4", "--engine", "dp", "--verify"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "added operations" in captured
        assert "equivalence check : passed" in captured

    def test_output_file_is_written(self, tmp_path, capsys):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        output = tmp_path / "mapped.qasm"
        exit_code = main([path, "--engine", "stochastic", "--trials", "2",
                          "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        text = output.read_text()
        assert text.startswith("OPENQASM 2.0;")

    def test_heuristic_engines(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        path = self._write_qasm(tmp_path, circuit)
        assert main([path, "--engine", "sabre"]) == 0
        assert main([path, "--engine", "stochastic", "--trials", "1"]) == 0

    def test_sat_engine_with_strategy(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main(
            [path, "--engine", "sat", "--strategy", "triangle", "--subsets"]
        )
        assert exit_code == 0

    def test_split_window_promotes_sat_engine(self, tmp_path, capsys):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        circuit.cx(4, 5)
        circuit.cx(0, 5)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main(
            [path, "--arch", "ibm_qx5", "--engine", "sat",
             "--split-window", "2", "--verify"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "engine            : sat_split" in captured
        assert "equivalence check : passed" in captured

    def test_split_window_rejects_other_engines(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        with pytest.raises(SystemExit):
            main([path, "--engine", "dp", "--split-window", "4"])
        with pytest.raises(SystemExit):
            main([path, "--engine", "sat", "--split-window", "0"])

    def test_unknown_architecture_errors(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        with pytest.raises(SystemExit):
            main([path, "--arch", "made_up_device"])

    def test_sat_engine_end_to_end(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main([path, "--engine", "sat", "--verify"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "engine            : sat" in captured
        assert "equivalence check : passed" in captured

    def test_registry_alias_engine(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main([path, "--engine", "sabre_lite"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "engine            : sabre_lite" in captured

    def test_registry_portfolio_engine(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main([path, "--engine", "portfolio", "--verify"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "engine            : portfolio" in captured
        assert "equivalence check : passed" in captured

    def test_custom_registered_engine(self, tmp_path, capsys):
        from repro.exact.dp_mapper import DPMapper
        from repro.pipeline.registry import DEFAULT_REGISTRY

        DEFAULT_REGISTRY.register(
            "test_cli_engine", lambda coupling, **opts: DPMapper(coupling),
            overwrite=True,
        )
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        assert main([path, "--engine", "test_cli_engine"]) == 0

    def test_sat_engine_parallel_workers(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main(
            [path, "--engine", "sat", "--subsets", "--workers", "2"]
        )
        assert exit_code == 0

    def test_sat_engine_process_executor(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        path = self._write_qasm(tmp_path, circuit)
        exit_code = main(
            [path, "--engine", "sat", "--subsets",
             "--workers", "2", "--executor", "process"]
        )
        assert exit_code == 0

    def test_unknown_engine_errors(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        with pytest.raises(SystemExit):
            main([path, "--engine", "made_up_engine"])

    def test_list_engines(self, capsys):
        assert main(["--list-engines"]) == 0
        captured = capsys.readouterr().out
        for name in ("sat", "dp", "portfolio"):
            assert name in captured.splitlines()

    def test_missing_qasm_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIServiceSubcommands:
    """The cache admin and async serve front ends of the CLI."""

    @pytest.fixture(autouse=True)
    def _unconfigured_cache(self, monkeypatch):
        from repro.arch.cache import clear_caches, reset_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_caches()
        reset_cache_dir()
        yield
        clear_caches()
        reset_cache_dir()

    def _write_qasm(self, tmp_path, circuit, name="circuit.qasm"):
        from repro.circuit.qasm import to_qasm

        path = tmp_path / name
        path.write_text(to_qasm(circuit))
        return str(path)

    def test_cache_stats_without_directory(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "in-process caches" in out
        assert "no cache directory configured" in out

    def test_cache_stats_with_directory(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "result store" in out
        assert "disk_entries" in out

    def test_map_uses_persistent_result_cache(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        path = self._write_qasm(tmp_path, circuit)
        cache_dir = str(tmp_path / "cache")
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "result cache      : miss" in first
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "result cache      : hit" in second

    def test_cache_clear_reports_removals(self, tmp_path, capsys):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        cache_dir = str(tmp_path / "cache")
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "in-process caches cleared" in out
        assert "1 results" in out
        # After clearing, the same mapping is a miss again.
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        assert "result cache      : miss" in capsys.readouterr().out

    def test_env_var_enables_result_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        assert main([path, "--engine", "dp"]) == 0
        assert "result cache      : miss" in capsys.readouterr().out
        assert main([path, "--engine", "dp"]) == 0
        assert "result cache      : hit" in capsys.readouterr().out

    def test_serve_batch_with_caching_and_routing(self, tmp_path, capsys):
        small = QuantumCircuit(3, name="small")
        small.cx(0, 1)
        small.cx(1, 2)
        wide = QuantumCircuit(9, name="wide")
        wide.cx(0, 8)
        a = self._write_qasm(tmp_path, small, "a.qasm")
        b = self._write_qasm(tmp_path, wide, "b.qasm")
        cache_dir = str(tmp_path / "cache")
        exit_code = main([
            "serve", a, b, a,
            "--arch", "ibm_qx4", "--arch", "ibm_qx5",
            "--engine", "sabre", "--cache-dir", cache_dir,
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "3 submitted" in out
        assert "arch=ibm_qx5" in out  # the wide circuit was routed up
        # The duplicate submission was deduplicated (cache hit or coalesced).
        assert ("cache" in out) or ("coalesced" in out)

    def test_serve_reports_failures_per_job(self, tmp_path, capsys):
        wide = QuantumCircuit(16, name="very_wide")
        wide.cx(0, 15)
        path = self._write_qasm(tmp_path, wide, "wide.qasm")
        exit_code = main([
            "serve", path, "--arch", "ibm_qx5", "--engine", "dp",
        ])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "FAILED" in out


class TestCLIBoundsAndPrune:
    """The bound-seeding flags and the cache prune subcommand."""

    @pytest.fixture(autouse=True)
    def _unconfigured_cache(self, monkeypatch):
        from repro.arch.cache import clear_caches, reset_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_caches()
        reset_cache_dir()
        yield
        clear_caches()
        reset_cache_dir()

    def _write_qasm(self, tmp_path, circuit, name="circuit.qasm"):
        from repro.circuit.qasm import to_qasm

        path = tmp_path / name
        path.write_text(to_qasm(circuit))
        return str(path)

    def _nontrivial_circuit(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 3)
        circuit.cx(3, 0)
        return circuit

    def test_sat_run_is_seeded_from_cached_dp_result(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._nontrivial_circuit())
        cache_dir = str(tmp_path / "cache")
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main([path, "--engine", "sat", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "bound seeded" in out
        # The default cached-path provider is now the ModelProvider (a
        # StoreBoundProvider that additionally replays cached schedules).
        assert "provider: model" in out
        assert "model seeded" in out

    def test_no_bound_seeding_flag(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._nontrivial_circuit())
        cache_dir = str(tmp_path / "cache")
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main([path, "--engine", "sat", "--cache-dir", cache_dir,
                     "--no-bound-seeding"]) == 0
        out = capsys.readouterr().out
        assert "bound seeded" not in out

    def test_static_upper_bound_flag(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._nontrivial_circuit())
        assert main([path, "--engine", "sat", "--upper-bound", "11"]) == 0
        out = capsys.readouterr().out
        assert "bound seeded      : 11 (provider: static)" in out

    def test_unachievable_upper_bound_fails_cleanly(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._nontrivial_circuit())
        assert main([path, "--engine", "sat", "--upper-bound", "1"]) == 1
        err = capsys.readouterr().err
        assert "upper-bound" in err

    def test_cache_prune_drops_old_results(self, tmp_path, capsys):
        import sqlite3
        import time as _time

        path = self._write_qasm(tmp_path, self._nontrivial_circuit())
        cache_dir = str(tmp_path / "cache")
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        with sqlite3.connect(str(tmp_path / "cache" / "results.sqlite")) as conn:
            conn.execute("UPDATE results SET created_at = ?", (_time.time() - 120,))
        assert main(["cache", "prune", "--ttl", "60", "--cache-dir", cache_dir]) == 0
        import json as _json

        report = _json.loads(capsys.readouterr().out)
        assert report["rows_pruned"] == 1
        assert report["bytes_reclaimed"] > 0
        assert report["cache_dir"] == cache_dir
        # Pruned entry is gone: the next run is a miss again.
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        assert "result cache      : miss" in capsys.readouterr().out

    def test_cache_prune_requires_ttl_and_directory(self, tmp_path):
        from repro.arch.cache import reset_cache_dir

        with pytest.raises(SystemExit):
            main(["cache", "prune", "--cache-dir", str(tmp_path / "cache")])
        reset_cache_dir()  # the first call activated the directory globally
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--ttl", "60"])

    def test_result_ttl_flag_expires_cache_hits(self, tmp_path, capsys):
        import sqlite3
        import time as _time

        path = self._write_qasm(tmp_path, self._nontrivial_circuit())
        cache_dir = str(tmp_path / "cache")
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        with sqlite3.connect(str(tmp_path / "cache" / "results.sqlite")) as conn:
            conn.execute("UPDATE results SET created_at = ?", (_time.time() - 120,))
        assert main([path, "--engine", "dp", "--cache-dir", cache_dir,
                     "--result-ttl", "60"]) == 0
        assert "result cache      : miss" in capsys.readouterr().out


class TestCLIOptimizerFlags:
    """The optimizer-strategy layer's CLI surface."""

    def _write_qasm(self, tmp_path, circuit):
        path = tmp_path / "circuit.qasm"
        path.write_text(to_qasm(circuit))
        return str(path)

    def _paper_circuit(self):
        circuit = QuantumCircuit(4)
        circuit.cx(2, 3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 1)
        circuit.cx(0, 1)
        return circuit

    def test_list_optimizers(self, capsys):
        assert main(["--list-optimizers"]) == 0
        out = capsys.readouterr().out
        for name in ("linear", "binary", "core", "race"):
            assert name in out
        # Descriptions ride along.
        assert "core-guided" in out

    def test_unknown_optimizer_errors_early(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        with pytest.raises(SystemExit):
            main([path, "--engine", "sat", "--optimizer", "made_up"])

    def test_race_requires_portfolio_engine(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        with pytest.raises(SystemExit):
            main([path, "--engine", "sat", "--optimizer", "race"])

    def test_optimizer_rejected_for_non_sat_engines(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = self._write_qasm(tmp_path, circuit)
        with pytest.raises(SystemExit):
            main([path, "--engine", "dp", "--optimizer", "core"])

    def test_core_optimizer_end_to_end(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._paper_circuit())
        assert main([path, "--engine", "sat", "--optimizer", "core"]) == 0
        out = capsys.readouterr().out
        assert "added operations  : 4" in out
        assert "proven minimal    : True" in out

    def test_explain_prints_final_core(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._paper_circuit())
        assert main(
            [path, "--engine", "sat", "--optimizer", "core", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "final UNSAT core" in out
        assert "objective term" in out

    def test_explain_without_core_reports_gracefully(self, tmp_path, capsys):
        # Linear descent proves optimality via committed bounds: no core.
        path = self._write_qasm(tmp_path, self._paper_circuit())
        assert main([path, "--engine", "sat", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "no UNSAT core recorded" in out

    def test_portfolio_race_end_to_end(self, tmp_path, capsys):
        path = self._write_qasm(tmp_path, self._paper_circuit())
        assert main(
            [path, "--engine", "portfolio", "--optimizer", "race"]
        ) == 0
        out = capsys.readouterr().out
        assert "added operations  : 4" in out
