"""Unit tests for circuit layering and clustering utilities."""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.layers import (
    disjoint_qubit_layers,
    front_layers,
    interaction_graph,
    two_qubit_blocks,
)


def paper_fig1b_gates():
    """CNOT skeleton of Fig. 1b of the paper (the benchlib reading)."""
    from repro.benchlib.paper_example import paper_example_cnot_skeleton

    return paper_example_cnot_skeleton().cnot_gates()


class TestDisjointQubitLayers:
    def test_paper_example_clustering(self):
        # g1 and g2 act on disjoint qubits; every later gate shares a qubit
        # with its predecessor, matching Example 10 of the paper
        # (G' = {g3, g4, g5}, i.e. spots at gates 1-based 1, 3, 4, 5).
        layers = disjoint_qubit_layers(paper_fig1b_gates())
        assert layers == [[0, 1], [2], [3], [4]]

    def test_single_gate(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert disjoint_qubit_layers(circuit.cnot_gates()) == [[0]]

    def test_empty(self):
        assert disjoint_qubit_layers([]) == []

    def test_all_disjoint(self):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        circuit.cx(4, 5)
        assert disjoint_qubit_layers(circuit.cnot_gates()) == [[0, 1, 2]]


class TestFrontLayers:
    def test_respects_dependencies(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        layers = front_layers(circuit)
        assert layers == [[0], [1], [2]]

    def test_parallel_gates_share_layer(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        circuit.cx(1, 2)
        layers = front_layers(circuit)
        assert layers[0] == [0, 1]
        assert layers[1] == [2]

    def test_directives_are_skipped(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        circuit.cx(0, 1)
        layers = front_layers(circuit)
        assert layers == [[1]]


class TestTwoQubitBlocks:
    def test_paper_example_triangle_blocks(self):
        # All five CNOTs of Fig. 1b touch only q2, q3, q4 except g2 and g5
        # which involve q1; with a 3-qubit bound the clustering yields two
        # blocks, matching Example 10 (permutation needed only before g2).
        blocks = two_qubit_blocks(paper_fig1b_gates(), max_qubits=3)
        assert blocks[0] == [0]
        assert len(blocks) == 2

    def test_block_bound_respected(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(3, 4)
        blocks = two_qubit_blocks(circuit.cnot_gates(), max_qubits=3)
        for block in blocks:
            support = set()
            for index in block:
                support |= set(circuit.cnot_gates()[index].qubits)
            assert len(support) <= 3

    def test_rejects_small_bound(self):
        import pytest

        with pytest.raises(ValueError):
            two_qubit_blocks([], max_qubits=1)


class TestInteractionGraph:
    def test_weights_count_two_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cx(1, 2)
        circuit.h(0)
        graph = interaction_graph(circuit)
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1
        assert not graph.has_edge(0, 2)

    def test_nodes_cover_all_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        graph = interaction_graph(circuit)
        assert set(graph.nodes) == {0, 1, 2, 3}
