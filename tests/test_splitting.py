"""Tests of windowed circuit splitting (the ``sat_split`` engine).

The acceptance path of the PR: exact window solves stitched by synthesized
permutations carry a 16-qubit circuit across ``ibm_qx5`` and a 20-qubit
circuit across ``ibm_tokyo`` — far beyond the permutation-table wall — and
the mapped circuits are semantically equivalent to their originals.
"""

import random

import pytest

from repro.arch.devices import ibm_qx4, ibm_qx5, ibm_tokyo
from repro.circuit.circuit import QuantumCircuit
from repro.exact.splitting import (
    DEFAULT_QUBIT_CAP,
    SplitSATMapper,
    partition_windows,
)
from repro.pipeline import get_mapper, resolve_mapper_name
from repro.sim.equivalence import result_is_equivalent


def _random_circuit(num_qubits, num_cnots, seed, name="split_test"):
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name)
    for index in range(num_cnots):
        control, target = rng.sample(range(num_qubits), 2)
        if index % 3 == 0:
            circuit.h(control)
        circuit.cx(control, target)
    return circuit


class TestPartitionWindows:
    def test_gate_count_bound(self):
        gates = [(0, 1)] * 7
        windows = partition_windows(gates, window_size=3, qubit_cap=5)
        assert windows == [[0, 1, 2], [3, 4, 5], [6]]

    def test_qubit_cap_closes_window(self):
        # Third gate would grow the active set to 6 qubits under cap 5.
        gates = [(0, 1), (2, 3), (4, 5), (4, 0)]
        windows = partition_windows(gates, window_size=10, qubit_cap=5)
        assert windows == [[0, 1], [2, 3]]

    def test_covers_every_gate_exactly_once(self):
        rng = random.Random(11)
        gates = [tuple(rng.sample(range(16), 2)) for _ in range(40)]
        windows = partition_windows(gates, window_size=5, qubit_cap=4)
        flattened = [index for window in windows for index in window]
        assert flattened == list(range(len(gates)))
        for window in windows:
            active = {q for index in window for q in gates[index]}
            assert len(window) <= 5
            assert len(active) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_windows([(0, 1)], window_size=0, qubit_cap=5)
        with pytest.raises(ValueError):
            partition_windows([(0, 1)], window_size=3, qubit_cap=1)


class TestSplitSATMapperValidation:
    def test_qubit_cap_bounds(self):
        with pytest.raises(ValueError):
            SplitSATMapper(ibm_qx5(), qubit_cap=1)
        with pytest.raises(ValueError):
            SplitSATMapper(ibm_qx5(), qubit_cap=9)

    def test_window_size_bounds(self):
        with pytest.raises(ValueError):
            SplitSATMapper(ibm_qx5(), window_size=0)

    def test_circuit_too_large_for_device(self):
        mapper = SplitSATMapper(ibm_qx4())
        with pytest.raises(ValueError):
            mapper.map(_random_circuit(6, 4, seed=0))

    def test_registry_names(self):
        assert resolve_mapper_name("sat_split") == "sat_split"
        assert resolve_mapper_name("split") == "sat_split"
        mapper = get_mapper("sat_split", ibm_qx5(), window_size=4)
        assert isinstance(mapper, SplitSATMapper)
        assert mapper.window_size == 4
        assert mapper.qubit_cap == DEFAULT_QUBIT_CAP


class TestSplitSATMapperSmall:
    def test_no_cnot_circuit_is_trivially_optimal(self):
        circuit = QuantumCircuit(3, "h_only")
        circuit.h(0).h(2)
        result = SplitSATMapper(ibm_qx5(), window_size=4).map(circuit)
        result.validate(ibm_qx5())
        assert result.optimal is True
        assert result.objective == 0
        assert result.statistics["split_windows"] == 0

    def test_qx4_windowed_result_valid_and_equivalent(self):
        coupling = ibm_qx4()
        circuit = _random_circuit(4, 9, seed=5, name="qx4_split")
        result = SplitSATMapper(
            coupling, window_size=3, qubit_cap=4, optimizer="core"
        ).map(circuit)
        result.validate(coupling)
        assert result.optimal is False  # stitched results never claim minimality
        assert result.engine == "sat_split"
        stats = result.statistics
        assert stats["split_windows"] == len(stats["window_objectives"]) == 3
        # Subset-based window solves are conservative about the optimality
        # flag (use_subsets never claims proven minimality), so this only
        # bounds the counter.
        assert 0 <= stats["windows_optimal"] <= stats["split_windows"]
        assert len(stats["stitch_swaps"]) == stats["split_windows"] - 1
        assert stats["stitch_swaps_total"] == sum(stats["stitch_swaps"])
        assert sum(stats["window_gates"]) == 9
        assert result.objective == result.cost.added_cost
        assert result_is_equivalent(result, num_random_states=2, seed=9)


class TestSplitSATMapperBigDevices:
    def test_qx5_16_qubit_circuit(self):
        coupling = ibm_qx5()
        circuit = _random_circuit(16, 10, seed=3, name="qx5_16q")
        result = SplitSATMapper(
            coupling, window_size=4, qubit_cap=4, optimizer="core"
        ).map(circuit)
        result.validate(coupling)
        assert result.optimal is False
        assert result.statistics["split_windows"] >= 2
        # The routed synthesizer stitched the windows on this 16q device.
        assert result.statistics.get("routed_reconstruction") == 1
        assert result_is_equivalent(result, num_random_states=1, seed=1)

    def test_tokyo_20_qubit_circuit(self):
        coupling = ibm_tokyo()
        circuit = _random_circuit(20, 8, seed=2, name="tokyo_20q")
        result = SplitSATMapper(
            coupling, window_size=4, qubit_cap=4, optimizer="core"
        ).map(circuit)
        result.validate(coupling)
        assert result.optimal is False
        assert result.statistics.get("routed_reconstruction") == 1
        # 2^20 statevectors: keep the equivalence check to the basis states.
        assert result_is_equivalent(result, num_random_states=0)
