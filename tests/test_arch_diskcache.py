"""Tests for the on-disk permutation-table warm-start layer."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.cache import (
    cache_stats,
    clear_caches,
    get_cache_dir,
    reset_cache_dir,
    set_cache_dir,
    shared_permutation_table,
)
from repro.arch.devices import ibm_qx4
from repro.arch.diskcache import PermutationDiskStore
from repro.arch.permutations import PermutationTable

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _isolated_caches(monkeypatch):
    """Each test starts with cold caches and an unconfigured disk layer."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    clear_caches()
    reset_cache_dir()
    yield
    clear_caches()
    reset_cache_dir()


class TestPermutationDiskStore:
    def test_save_load_round_trip(self, tmp_path):
        store = PermutationDiskStore(tmp_path)
        table = PermutationTable(ibm_qx4())
        store.save(table)
        loaded = store.load(ibm_qx4())
        assert loaded is not None
        assert len(loaded) == len(table)
        for perm in table.permutations():
            assert loaded.swaps(perm) == table.swaps(perm)
            assert loaded.swap_sequence(perm) == table.swap_sequence(perm)

    def test_missing_entry_is_none(self, tmp_path):
        assert PermutationDiskStore(tmp_path).load(ibm_qx4()) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = PermutationDiskStore(tmp_path)
        table = PermutationTable(ibm_qx4())
        path = store.save(table)
        path.write_text("{broken")
        assert store.load(ibm_qx4()) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        store = PermutationDiskStore(tmp_path)
        path = store.save(PermutationTable(ibm_qx4()))
        payload = json.loads(path.read_text())
        payload["schema_version"] = 999
        path.write_text(json.dumps(payload))
        assert store.load(ibm_qx4()) is None

    def test_clear_removes_entries(self, tmp_path):
        store = PermutationDiskStore(tmp_path)
        store.save(PermutationTable(ibm_qx4()))
        assert store.size_bytes() > 0
        assert store.clear() == 1
        assert store.entries() == []


class TestWarmStartIntegration:
    def test_disk_write_on_first_build(self, tmp_path):
        set_cache_dir(str(tmp_path))
        shared_permutation_table(ibm_qx4())
        stats = cache_stats()
        assert stats["permutation_table_disk_writes"] == 1
        assert stats["permutation_tables_on_disk"] == 1

    def test_fresh_memory_cache_warm_starts_from_disk(self, tmp_path):
        set_cache_dir(str(tmp_path))
        first = shared_permutation_table(ibm_qx4())
        clear_caches()  # simulates a process restart (memory gone, disk kept)
        second = shared_permutation_table(ibm_qx4())
        assert second is not first
        assert len(second) == len(first)
        stats = cache_stats()
        assert stats["permutation_table_disk_hits"] == 1
        assert stats["permutation_table_disk_writes"] == 0  # no rebuild

    def test_env_var_configures_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert get_cache_dir() == str(tmp_path)
        shared_permutation_table(ibm_qx4())
        assert cache_stats()["permutation_tables_on_disk"] == 1

    def test_explicit_none_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        set_cache_dir(None)
        assert get_cache_dir() is None
        shared_permutation_table(ibm_qx4())
        assert cache_stats().get("permutation_tables_on_disk", 0) == 0

    def test_cross_process_warm_start(self, tmp_path):
        """A table persisted by one process is loaded (not rebuilt) by the next."""
        src = str(_REPO_ROOT / "src")
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.arch.cache import set_cache_dir, shared_permutation_table, cache_stats\n"
            "from repro.arch.devices import ibm_qx4\n"
            "set_cache_dir({cache!r})\n"
            "shared_permutation_table(ibm_qx4())\n"
            "stats = cache_stats()\n"
            "print(stats['permutation_table_disk_hits'], stats['permutation_table_disk_writes'])\n"
        ).format(src=src, cache=str(tmp_path))
        first = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert first.stdout.split() == ["0", "1"]  # built and persisted
        second = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert second.stdout.split() == ["1", "0"]  # warm-started from disk
