"""Tests for heuristic bound seeding: ``minimize(upper_bound=...)`` and portfolio mode."""

import pytest

from repro.arch.devices import ibm_qx4
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_cnot_skeleton,
)
from repro.circuit.circuit import QuantumCircuit
from repro.exact.sat_mapper import SATMapper, SATMapperError
from repro.heuristic.sabre_lite import SabreLiteMapper
from repro.pipeline.portfolio import PortfolioMapper
from repro.sat.cnf import CNF
from repro.sat.optimize import ObjectiveTerm, OptimizingSolver


def _weighted_instance():
    """CNF ``(a | b)`` with objective ``3a + 5b`` — minimum 3."""
    cnf = CNF()
    a, b = cnf.new_var("a"), cnf.new_var("b")
    cnf.add_clause([a, b])
    return cnf, [ObjectiveTerm(3, a), ObjectiveTerm(5, b)]


@pytest.fixture(scope="module")
def plain_paper_result():
    """Unseeded full-formulation SAT result of the paper example.

    The unseeded solve is by far the most expensive step of this module
    (the optimiser descends from an arbitrary first model), so it is shared
    by every test that compares against it.
    """
    return SATMapper(ibm_qx4()).map(paper_example_cnot_skeleton())


@pytest.fixture(scope="module")
def paper_heuristic_bound():
    """SabreLite's added cost on the paper example (a valid upper bound)."""
    return SabreLiteMapper(ibm_qx4()).map(paper_example_cnot_skeleton()).added_cost


class TestOptimizerUpperBound:
    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    @pytest.mark.parametrize("bound", [3, 4, 10])
    def test_objective_never_exceeds_bound(self, strategy, bound):
        cnf, objective = _weighted_instance()
        result = OptimizingSolver(cnf, objective).minimize(
            strategy=strategy, upper_bound=bound
        )
        assert result.is_satisfiable
        assert result.objective <= bound
        assert result.objective == 3
        assert result.is_optimal

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_unreachable_bound_reports_unsat(self, strategy):
        cnf, objective = _weighted_instance()
        result = OptimizingSolver(cnf, objective).minimize(
            strategy=strategy, upper_bound=2
        )
        assert result.status == "unsat"
        assert not result.is_satisfiable

    def test_negative_bound_rejected(self):
        cnf, objective = _weighted_instance()
        with pytest.raises(ValueError):
            OptimizingSolver(cnf, objective).minimize(upper_bound=-1)

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_minimize_does_not_mutate_caller_cnf(self, strategy):
        # Seed clauses and descent bounds are search state: a later call on
        # the same instance must not inherit an earlier call's F <= k.
        cnf, objective = _weighted_instance()
        clauses_before = cnf.num_clauses
        solver = OptimizingSolver(cnf, objective)
        assert solver.minimize(strategy=strategy, upper_bound=2).status == "unsat"
        assert cnf.num_clauses == clauses_before
        again = solver.minimize(strategy=strategy, upper_bound=10)
        assert again.objective == 3
        unbounded = solver.minimize(strategy=strategy)
        assert unbounded.objective == 3

    def test_seeding_reduces_linear_iterations(self):
        unseeded_cnf, unseeded_objective = _weighted_instance()
        unseeded = OptimizingSolver(unseeded_cnf, unseeded_objective).minimize()
        seeded_cnf, seeded_objective = _weighted_instance()
        seeded = OptimizingSolver(seeded_cnf, seeded_objective).minimize(upper_bound=3)
        assert seeded.objective == unseeded.objective == 3
        assert seeded.iterations <= unseeded.iterations


class TestSATMapperUpperBound:
    def test_seeded_map_matches_unseeded(self, plain_paper_result, paper_heuristic_bound):
        circuit = paper_example_cnot_skeleton()
        seeded = SATMapper(ibm_qx4()).map(circuit, upper_bound=paper_heuristic_bound)
        assert plain_paper_result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert seeded.added_cost == plain_paper_result.added_cost
        assert seeded.optimal
        assert seeded.statistics["seeded_upper_bound"] == paper_heuristic_bound

    def test_seeding_reduces_solver_iterations_on_paper_example(
        self, plain_paper_result, paper_heuristic_bound
    ):
        circuit = paper_example_cnot_skeleton()
        seeded = SATMapper(ibm_qx4()).map(circuit, upper_bound=paper_heuristic_bound)
        assert (
            seeded.statistics["solver_iterations"]
            < plain_paper_result.statistics["solver_iterations"]
        )

    def test_too_tight_bound_raises(self):
        circuit = paper_example_cnot_skeleton()
        with pytest.raises(SATMapperError):
            SATMapper(ibm_qx4()).map(
                circuit, upper_bound=PAPER_EXAMPLE_MINIMAL_COST - 1
            )

    def test_bound_equal_to_minimum_still_proves_it(self):
        circuit = paper_example_cnot_skeleton()
        result = SATMapper(ibm_qx4()).map(
            circuit, upper_bound=PAPER_EXAMPLE_MINIMAL_COST
        )
        assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
        assert result.optimal


class TestPortfolioMapper:
    def test_identical_objective_to_plain_sat_on_paper_example(self):
        circuit = paper_example_cnot_skeleton()
        plain = SATMapper(ibm_qx4()).map(circuit)
        portfolio = PortfolioMapper(ibm_qx4()).map(circuit)
        assert portfolio.objective == plain.objective == PAPER_EXAMPLE_MINIMAL_COST
        assert portfolio.engine == "portfolio"
        assert portfolio.statistics["portfolio_source"] == "sat"
        assert portfolio.statistics["portfolio_bound"] >= portfolio.objective

    def test_portfolio_never_needs_more_iterations(self):
        circuit = paper_example_cnot_skeleton()
        plain = SATMapper(ibm_qx4()).map(circuit)
        portfolio = PortfolioMapper(ibm_qx4()).map(circuit)
        assert (
            portfolio.statistics["solver_iterations"]
            <= plain.statistics["solver_iterations"]
        )

    def test_zero_cost_circuit_short_circuits_to_heuristic(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        result = PortfolioMapper(ibm_qx4()).map(circuit)
        if result.statistics["portfolio_bound"] == 0:
            assert result.statistics["portfolio_source"] == "heuristic"
            assert result.optimal
        assert result.added_cost == 0

    def test_heuristic_fallback_when_bound_unreachable_for_sat(self):
        # A restricted SAT stage may not be able to realise the heuristic's
        # mapping; the portfolio must then return the heuristic result
        # instead of failing.
        from repro.exact.strategies import WindowStrategy

        circuit = QuantumCircuit(4, name="dense")
        for control in range(4):
            for target in range(4):
                if control != target:
                    circuit.cx(control, target)
        mapper = PortfolioMapper(
            ibm_qx4(), strategy=WindowStrategy(window=10**6)
        )
        result = mapper.map(circuit)
        assert result.added_cost >= 0
        assert result.statistics["portfolio_source"] in ("sat", "heuristic")
        if result.statistics["portfolio_source"] == "heuristic":
            assert "portfolio_sat_error" in result.statistics

    def test_portfolio_registered_in_registry(self):
        from repro.pipeline.registry import get_mapper

        mapper = get_mapper("portfolio", ibm_qx4(), heuristic="stochastic",
                            heuristic_options={"trials": 2})
        assert mapper.heuristic_name == "stochastic"
