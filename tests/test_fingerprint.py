"""Tests for circuit and job fingerprints, including QASM round trips."""

import math

import pytest

from repro.arch.devices import ibm_qx2, ibm_qx4
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import parse_qasm, to_qasm
from repro.exact.strategies import get_strategy
from repro.service.fingerprint import (
    canonical_options,
    coupling_fingerprint,
    describe_job,
    job_fingerprint,
)


def _rich_circuit():
    """One of everything the serialization layer must carry."""
    circuit = QuantumCircuit(3, name="rich")
    circuit.h(0)
    circuit.t(1)
    circuit.sdg(2)
    circuit.rx(0.1, 0)
    circuit.ry(-math.pi / 3, 1)
    circuit.rz(2.5, 2)
    circuit.u3(0.1, 0.2, 0.3, 0)
    circuit.cx(0, 1)
    circuit.cz(1, 2)
    circuit.swap(0, 2)
    circuit.barrier()
    circuit.barrier(0, 1)
    circuit.measure(0, 0)
    circuit.measure(2, 1)
    return circuit


class TestCircuitFingerprint:
    def test_deterministic_and_name_independent(self):
        a = QuantumCircuit(2, name="first")
        a.h(0)
        a.cx(0, 1)
        b = QuantumCircuit(2, name="second")
        b.h(0)
        b.cx(0, 1)
        assert a.fingerprint() == b.fingerprint()

    def test_gate_order_and_operands_matter(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_qubit_count_matters(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(3)
        b.cx(0, 1)
        assert a.fingerprint() != b.fingerprint()

    def test_parameters_matter(self):
        a = QuantumCircuit(1)
        a.rx(0.5, 0)
        b = QuantumCircuit(1)
        b.rx(0.5000001, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_measure_clbit_matters(self):
        a = QuantumCircuit(1)
        a.measure(0, 0)
        b = QuantumCircuit(1)
        b.measure(0, 1)
        assert a.fingerprint() != b.fingerprint()

    def test_gate_stream_is_one_line_per_gate(self):
        circuit = _rich_circuit()
        assert len(list(circuit.gate_stream())) == circuit.num_gates


class TestQasmRoundTripFingerprints:
    """``parse_qasm(to_qasm(c))`` must preserve the fingerprint exactly.

    This is the property the persistent result store depends on: results are
    stored as QASM text, and a lossy round trip would silently change what a
    cached fingerprint points at.
    """

    def test_rich_circuit_round_trips(self):
        circuit = _rich_circuit()
        round_tripped = parse_qasm(to_qasm(circuit))
        assert round_tripped.fingerprint() == circuit.fingerprint()

    def test_parameterized_gates_round_trip(self):
        circuit = QuantumCircuit(2)
        circuit.rx(math.pi / 7, 0)
        circuit.ry(1e-12, 1)
        circuit.rz(-123.456789012345, 0)
        circuit.u3(0.333333333333333, -0.1, math.pi, 1)
        round_tripped = parse_qasm(to_qasm(circuit))
        assert round_tripped.fingerprint() == circuit.fingerprint()

    def test_barrier_round_trips(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.barrier()
        circuit.barrier(1, 2)
        circuit.cx(0, 1)
        round_tripped = parse_qasm(to_qasm(circuit))
        assert round_tripped.fingerprint() == circuit.fingerprint()

    def test_measure_round_trips(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure(0, 1)
        circuit.measure(1, 0)
        round_tripped = parse_qasm(to_qasm(circuit))
        assert round_tripped.num_clbits == circuit.num_clbits
        assert round_tripped.fingerprint() == circuit.fingerprint()

    def test_double_round_trip_is_stable(self):
        circuit = _rich_circuit()
        once = parse_qasm(to_qasm(circuit))
        twice = parse_qasm(to_qasm(once))
        assert twice.fingerprint() == circuit.fingerprint()


class TestJobFingerprint:
    def _circuit(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        return circuit

    def test_same_inputs_same_fingerprint(self):
        circuit = self._circuit()
        assert job_fingerprint(circuit, ibm_qx4(), "dp", {}) == job_fingerprint(
            circuit, ibm_qx4(), "dp", {}
        )

    def test_engine_and_arch_change_fingerprint(self):
        circuit = self._circuit()
        base = job_fingerprint(circuit, ibm_qx4(), "dp", {})
        assert job_fingerprint(circuit, ibm_qx4(), "sat", {}) != base
        assert job_fingerprint(circuit, ibm_qx2(), "dp", {}) != base

    def test_options_change_fingerprint(self):
        circuit = self._circuit()
        assert job_fingerprint(
            circuit, ibm_qx4(), "sat", {"use_subsets": True}
        ) != job_fingerprint(circuit, ibm_qx4(), "sat", {"use_subsets": False})

    def test_arch_name_is_excluded(self):
        circuit = self._circuit()
        qx4 = ibm_qx4()
        renamed = type(qx4)(qx4.num_qubits, qx4.edges, name="totally_different")
        assert job_fingerprint(circuit, qx4, "dp", {}) == job_fingerprint(
            circuit, renamed, "dp", {}
        )
        assert coupling_fingerprint(qx4) == coupling_fingerprint(renamed)

    def test_strategy_instances_reduce_deterministically(self):
        # A strategy instance reduces to a stable "<Type>:<name>" token, so
        # two runs configured with equivalent instances share one cache key.
        first = canonical_options({"strategy": get_strategy("odd")})
        second = canonical_options({"strategy": get_strategy("odd")})
        assert first == second
        assert "odd" in first
        assert first != canonical_options({"strategy": get_strategy("triangle")})

    def test_option_key_order_is_irrelevant(self):
        circuit = self._circuit()
        a = job_fingerprint(circuit, ibm_qx4(), "sat", {"a": 1, "b": 2})
        b = job_fingerprint(circuit, ibm_qx4(), "sat", {"b": 2, "a": 1})
        assert a == b

    def test_describe_job_carries_provenance(self):
        circuit = self._circuit()
        record = describe_job(circuit, ibm_qx4(), "dp", {"strategy": "all"})
        assert record["fingerprint"] == job_fingerprint(
            circuit, ibm_qx4(), "dp", {"strategy": "all"}
        )
        assert record["engine"] == "dp"
        assert record["num_qubits"] == 2
        assert record["arch_name"] == "ibm_qx4"
