"""Unit tests for the OpenQASM 2.0 parser and writer."""

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import CNOTGate
from repro.circuit.qasm import QasmSyntaxError, parse_qasm, to_qasm
from repro.circuit.qasm.lexer import Lexer, TokenType


class TestLexer:
    def test_tokenises_simple_program(self):
        tokens = Lexer('qreg q[3];').tokenize()
        kinds = [token.type for token in tokens]
        assert kinds == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.LBRACKET,
            TokenType.INTEGER,
            TokenType.RBRACKET,
            TokenType.SEMICOLON,
            TokenType.EOF,
        ]

    def test_comments_are_skipped(self):
        tokens = Lexer("// a comment\nqreg q[1];").tokenize()
        assert tokens[0].value == "qreg"

    def test_real_numbers(self):
        tokens = Lexer("rz(0.5e-1)").tokenize()
        values = [t.value for t in tokens if t.type is TokenType.REAL]
        assert values == ["0.5e-1"]

    def test_arrow_and_string(self):
        tokens = Lexer('measure q -> c; include "qelib1.inc";').tokenize()
        assert any(t.type is TokenType.ARROW for t in tokens)
        assert any(t.type is TokenType.STRING and t.value == "qelib1.inc" for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(QasmSyntaxError):
            Lexer("qreg q[1]; @").tokenize()


SIMPLE_PROGRAM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
t q[1];
cx q[0], q[1];
cx q[1], q[2];
rz(pi/2) q[2];
measure q[0] -> c[0];
"""


class TestParser:
    def test_parses_simple_program(self):
        circuit = parse_qasm(SIMPLE_PROGRAM)
        assert circuit.num_qubits == 3
        assert circuit.num_clbits == 3
        assert circuit.count_cnot() == 2
        assert circuit.count_single_qubit() == 3
        assert circuit.gates[2] == CNOTGate(0, 1)

    def test_parameter_expressions(self):
        circuit = parse_qasm(
            "qreg q[1]; rz(pi/4) q[0]; rx(-pi) q[0]; ry(2*pi/3) q[0]; u1(0.25+0.5) q[0];"
        )
        assert circuit.gates[0].params[0] == pytest.approx(math.pi / 4)
        assert circuit.gates[1].params[0] == pytest.approx(-math.pi)
        assert circuit.gates[2].params[0] == pytest.approx(2 * math.pi / 3)
        assert circuit.gates[3].params[2] == pytest.approx(0.75)

    def test_register_broadcast(self):
        circuit = parse_qasm("qreg q[3]; h q;")
        assert circuit.count_single_qubit() == 3

    def test_measure_broadcast(self):
        circuit = parse_qasm("qreg q[2]; creg c[2]; measure q -> c;")
        assert circuit.num_clbits == 2
        assert sum(1 for g in circuit if g.name == "measure") == 2

    def test_multiple_quantum_registers_are_flattened(self):
        circuit = parse_qasm("qreg a[2]; qreg b[2]; cx a[1], b[0];")
        assert circuit.num_qubits == 4
        assert circuit.gates[0] == CNOTGate(1, 2)

    def test_user_defined_gate_is_inlined(self):
        program = """
        OPENQASM 2.0;
        qreg q[2];
        gate mygate a, b { h a; cx a, b; }
        mygate q[0], q[1];
        """
        circuit = parse_qasm(program)
        assert [g.name for g in circuit] == ["h", "cx"]

    def test_parameterised_user_gate(self):
        program = """
        qreg q[1];
        gate phase(theta) a { rz(theta) a; }
        phase(pi/8) q[0];
        """
        circuit = parse_qasm(program)
        assert circuit.gates[0].params[0] == pytest.approx(math.pi / 8)

    def test_ccx_is_decomposed(self):
        circuit = parse_qasm("qreg q[3]; ccx q[0], q[1], q[2];")
        assert circuit.count_cnot() == 6
        assert circuit.count_single_qubit() == 9

    def test_barrier(self):
        circuit = parse_qasm("qreg q[2]; barrier q;")
        assert circuit.gates[0].name == "barrier"
        assert circuit.gates[0].qubits == (0, 1)

    def test_builtin_cx_uppercase(self):
        circuit = parse_qasm("qreg q[2]; CX q[0], q[1];")
        assert circuit.gates[0] == CNOTGate(0, 1)

    def test_errors(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("qreg q[2]; unknown q[0];")
        with pytest.raises(QasmSyntaxError):
            parse_qasm("qreg q[2]; cx q[0], q[5];")
        with pytest.raises(QasmSyntaxError):
            parse_qasm("cx q[0], q[1];")
        with pytest.raises(QasmSyntaxError):
            parse_qasm("qreg q[1]; if (c == 1) x q[0];")
        with pytest.raises(QasmSyntaxError):
            parse_qasm('include "other.inc"; qreg q[1];')

    def test_no_register_is_an_error(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("OPENQASM 2.0;")


class TestWriter:
    def test_round_trip(self):
        circuit = QuantumCircuit(3, num_clbits=2)
        circuit.h(0)
        circuit.u3(0.1, 0.2, 0.3, 1)
        circuit.cx(0, 2)
        circuit.barrier(0, 1)
        circuit.measure(2, 1)
        text = to_qasm(circuit)
        parsed = parse_qasm(text)
        assert parsed.num_qubits == 3
        assert [g.name for g in parsed] == [g.name for g in circuit]
        assert parsed.gates[1].params == circuit.gates[1].params

    def test_output_contains_header(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        text = to_qasm(circuit)
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "x q[0];" in text
