"""Unit tests for the Tseitin encoder and the optimising solver."""

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.optimize import ObjectiveTerm, OptimizingSolver
from repro.sat.solver import CDCLSolver, SolverResult
from repro.sat.tseitin import TseitinEncoder


def enumerate_models(cnf, variables):
    models = []
    all_vars = list(range(1, cnf.num_vars + 1))
    for bits in itertools.product([False, True], repeat=len(all_vars)):
        assignment = dict(zip(all_vars, bits))
        if cnf.evaluate(assignment):
            models.append({v: assignment[v] for v in variables})
    return models


class TestTseitin:
    def test_and_gate_definition(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        encoder = TseitinEncoder(cnf)
        gate = encoder.encode_and([a, b])
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip([a, b, gate], bits))
            if cnf.evaluate(assignment):
                assert assignment[gate] == (assignment[a] and assignment[b])

    def test_or_gate_definition(self):
        cnf = CNF()
        a, b, c = cnf.new_var(), cnf.new_var(), cnf.new_var()
        encoder = TseitinEncoder(cnf)
        gate = encoder.encode_or([a, b, c])
        for bits in itertools.product([False, True], repeat=4):
            assignment = dict(zip([a, b, c, gate], bits))
            if cnf.evaluate(assignment):
                assert assignment[gate] == (assignment[a] or assignment[b] or assignment[c])

    def test_xor_and_iff(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        encoder = TseitinEncoder(cnf)
        xor_gate = encoder.encode_xor(a, b)
        iff_gate = encoder.encode_iff(a, b)
        for bits in itertools.product([False, True], repeat=4):
            assignment = dict(zip([a, b, xor_gate, iff_gate], bits))
            if cnf.evaluate(assignment):
                assert assignment[xor_gate] == (assignment[a] != assignment[b])
                assert assignment[iff_gate] == (assignment[a] == assignment[b])

    def test_single_literal_shortcuts(self):
        cnf = CNF()
        a = cnf.new_var()
        encoder = TseitinEncoder(cnf)
        assert encoder.encode_and([a]) == a
        assert encoder.encode_or([a]) == a

    def test_empty_and_is_true_empty_or_is_false(self):
        cnf = CNF()
        encoder = TseitinEncoder(cnf)
        true_literal = encoder.encode_and([])
        false_literal = encoder.encode_or([])
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        assert solver.solve() is SolverResult.SAT
        assert solver.model()[true_literal] is True
        assert solver.model()[false_literal] is False

    def test_assertion_helpers(self):
        cnf = CNF()
        a, b, g = cnf.new_var(), cnf.new_var(), cnf.new_var()
        encoder = TseitinEncoder(cnf)
        encoder.add_iff_and(g, [a, b])
        encoder.add_implication(a, b)
        solver = CDCLSolver()
        solver.add_cnf(cnf)
        solver.add_clause([a])
        assert solver.solve() is SolverResult.SAT
        model = solver.model()
        assert model[b] is True and model[g] is True


class TestOptimizingSolver:
    def _simple_problem(self):
        cnf = CNF()
        a, b, c = cnf.new_var("a"), cnf.new_var("b"), cnf.new_var("c")
        # At least one of a, b; c implied by a.
        cnf.add_clause([a, b])
        cnf.add_clause([-a, c])
        objective = [ObjectiveTerm(3, a), ObjectiveTerm(5, b), ObjectiveTerm(2, c)]
        return cnf, objective, (a, b, c)

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_finds_minimum(self, strategy):
        cnf, objective, (a, b, c) = self._simple_problem()
        result = OptimizingSolver(cnf, objective).minimize(strategy=strategy)
        assert result.is_optimal
        # Minimum: choose b alone (cost 5) vs a (3) + forced c (2) = 5 -- both
        # optimal assignments cost 5.
        assert result.objective == 5

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_unsat_is_reported(self, strategy):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([a])
        cnf.add_clause([-a])
        result = OptimizingSolver(cnf, [ObjectiveTerm(1, a)]).minimize(strategy=strategy)
        assert result.status == "unsat"
        assert not result.is_satisfiable

    def test_zero_cost_solution_short_circuits(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        result = OptimizingSolver(cnf, [ObjectiveTerm(4, a)]).minimize()
        assert result.objective == 0
        assert result.is_optimal

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveTerm(-1, 2)

    def test_unknown_strategy(self):
        cnf = CNF()
        cnf.add_clause([cnf.new_var()])
        with pytest.raises(ValueError):
            OptimizingSolver(cnf, []).minimize(strategy="simulated_annealing")

    def test_empty_objective_is_zero(self):
        cnf = CNF()
        cnf.add_clause([cnf.new_var()])
        result = OptimizingSolver(cnf, []).minimize()
        assert result.objective == 0
        assert result.is_optimal

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_matches_brute_force_on_random_instances(self, strategy):
        import random

        rng = random.Random(42)
        for _ in range(5):
            cnf = CNF()
            num_vars = 6
            variables = [cnf.new_var() for _ in range(num_vars)]
            for _ in range(8):
                chosen = rng.sample(variables, 3)
                cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
            weights = [rng.randint(1, 9) for _ in range(num_vars)]
            objective = [ObjectiveTerm(w, v) for w, v in zip(weights, variables)]

            # Brute-force minimum.
            best = None
            for bits in itertools.product([False, True], repeat=num_vars):
                assignment = dict(zip(variables, bits))
                if cnf.evaluate(assignment):
                    cost = sum(w for w, b in zip(weights, bits) if b)
                    best = cost if best is None else min(best, cost)

            result = OptimizingSolver(cnf, objective).minimize(strategy=strategy)
            if best is None:
                assert result.status == "unsat"
            else:
                assert result.is_optimal
                assert result.objective == best
