"""Setup shim, plus the optional compiled-solver-backend build.

The project metadata lives in ``pyproject.toml`` where present; this file
keeps editable installs working on machines whose setuptools predates
PEP-660 editable wheels (and in fully offline environments via
``pip install -e . --no-build-isolation --no-use-pep517``).

Setting ``REPRO_BUILD_COMPILED=1`` additionally builds the *compiled*
solver backend: the CDCL core ``src/repro/sat/_solver_core.py`` is copied
to ``_solver_core_c.py`` and compiled to a native extension
(``repro.sat._solver_core_c``) with Cython when available, else mypyc.
Because the extension is built from the identical source, it produces
bit-for-bit identical models and statistics counters — it is selected (or
skipped, with a provenance note) at import time via
``REPRO_SOLVER_BACKEND=auto|pure|compiled``; see ``repro/sat/_backend.py``
and the README's "Solver internals" section.

Typical invocation::

    REPRO_BUILD_COMPILED=1 python setup.py build_ext --inplace
"""

import os
import shutil
from pathlib import Path

from setuptools import setup


def _compiled_backend_extensions():
    """Extension modules for the compiled solver backend, or ``[]``.

    The build is strictly opt-in (``REPRO_BUILD_COMPILED=1``): default
    installs must keep working on machines without a C toolchain, Cython or
    mypy — the pure backend is always available.
    """
    if os.environ.get("REPRO_BUILD_COMPILED") != "1":
        return []
    here = Path(__file__).parent
    source = here / "src" / "repro" / "sat" / "_solver_core.py"
    copy = here / "src" / "repro" / "sat" / "_solver_core_c.py"
    # The compiled module must coexist with the interpreted one so both
    # backends stay importable side by side (differential tests); compile a
    # generated copy under the _c name instead of shadowing the original.
    shutil.copyfile(source, copy)
    try:
        from Cython.Build import cythonize

        return cythonize([str(copy)], language_level=3)
    except ImportError:
        pass
    try:
        from mypyc.build import mypycify

        return mypycify([str(copy)])
    except ImportError:
        raise RuntimeError(
            "REPRO_BUILD_COMPILED=1 requires Cython or mypy (for mypyc) to "
            "be installed; unset it to install with the pure-Python solver "
            "backend only"
        )


setup(ext_modules=_compiled_backend_extensions())
