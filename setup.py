"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
the package can be installed in editable mode on machines whose setuptools
predates PEP-660 editable wheels (and in fully offline environments via
``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
