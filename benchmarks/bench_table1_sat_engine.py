"""Experiment E3 (and the SAT-engine side of E2/E4-E6).

The paper's actual method hands the symbolic formulation to a reasoning
engine.  Our reasoning engine is a pure-Python CDCL solver, so the full
"permutation before every gate" instances of the larger Table-1 circuits are
out of reach in reasonable benchmark time (the paper's C++/Z3 setup already
needed minutes per instance).  This file therefore exercises the SAT engine
exactly where it is tractable here:

* the Section-4.1 subset improvement on the 3-qubit benchmarks,
* the Section-4.2 "qubit triangle" and "odd gates" strategies on the smallest
  benchmark,
* the paper's worked example (Fig. 1) with the unrestricted formulation,
  proving minimality.

In every case the SAT result is cross-checked against the DP exact engine:
the two independent formulations must agree on the minimum.
"""

import pytest

from repro.benchlib import benchmark_circuit
from repro.benchlib.paper_example import (
    PAPER_EXAMPLE_MINIMAL_COST,
    paper_example_cnot_skeleton,
)
from repro.exact import DPMapper, SATMapper, get_strategy
from repro.verify import verify_result

#: 3-qubit benchmarks: small enough for the pure-Python SAT optimiser.
_SMALL_BENCHMARKS = ["ex-1_166", "ham3_102"]


@pytest.mark.parametrize("name", _SMALL_BENCHMARKS)
def test_sat_engine_with_subsets_and_triangle_strategy(benchmark, qx4, name):
    """Section 4.1 + 4.2 combined on the 3-qubit benchmarks."""
    circuit = benchmark_circuit(name)
    strategy = get_strategy("triangle")
    mapper = SATMapper(qx4, strategy=strategy, use_subsets=True, time_limit=120.0)

    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)

    assert verify_result(result, qx4).compliant
    reference = DPMapper(qx4, strategy=strategy).map(circuit)
    assert result.added_cost == reference.added_cost
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["measured_added_cost"] = result.added_cost
    benchmark.extra_info["encoding_variables"] = result.statistics["encoding_variables"]
    benchmark.extra_info["encoding_clauses"] = result.statistics["encoding_clauses"]


def test_sat_engine_odd_gates_on_smallest_benchmark(benchmark, qx4):
    """Section 4.2 "odd gates" on ex-1_166 via the SAT engine."""
    circuit = benchmark_circuit("ex-1_166")
    strategy = get_strategy("odd")
    mapper = SATMapper(qx4, strategy=strategy, use_subsets=True, time_limit=240.0)

    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)

    reference = DPMapper(qx4, strategy=strategy).map(circuit)
    assert result.added_cost == reference.added_cost
    benchmark.extra_info["measured_added_cost"] = result.added_cost
    benchmark.extra_info["permutation_spots"] = result.num_permutation_spots


def test_sat_engine_proves_minimality_of_paper_example(benchmark, qx4):
    """Experiment E1 with the paper's own machinery: minimal F = 4 for Fig. 1."""
    circuit = paper_example_cnot_skeleton()
    mapper = SATMapper(qx4, use_subsets=True, time_limit=300.0)

    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)

    assert result.added_cost == PAPER_EXAMPLE_MINIMAL_COST
    benchmark.extra_info["measured_added_cost"] = result.added_cost
    benchmark.extra_info["paper_added_cost"] = PAPER_EXAMPLE_MINIMAL_COST
