"""Shared helpers for the Table-1 benchmark files."""

from repro.benchlib.table1 import get_record


def record_table1_info(benchmark, name, result, paper_total):
    """Attach paper-vs-measured metadata to a pytest-benchmark entry."""
    record = get_record(name)
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["n_qubits"] = record.num_qubits
    benchmark.extra_info["original_cost"] = record.original_cost
    benchmark.extra_info["measured_total_cost"] = result.total_cost
    benchmark.extra_info["measured_added_cost"] = result.added_cost
    benchmark.extra_info["paper_total_cost"] = paper_total
    benchmark.extra_info["swaps"] = result.cost.swaps
    benchmark.extra_info["reversals"] = result.cost.reversals
