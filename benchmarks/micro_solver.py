#!/usr/bin/env python
"""Solver micro-benchmarks: branching-design justification and propagation.

Not collected by the CI benchmark job (which only picks up ``bench_*.py``);
run it by hand.  Three sections:

``branching``
    The measured-churn justification for the indexed VSIDS order heap that
    replaced the linear argmax scan.  PR 5 found a *naive* lazy heap slower
    than the scan it was meant to beat, so this benchmark races three
    decision-identical branchers on a real mapping instance:

    * ``linear-scan`` — the original ``O(num_vars)`` argmax over all
      unassigned variables on every decision;
    * ``lazy-heapq`` — the classic "push on every bump, filter stale
      entries on pop" design built on :mod:`heapq`.  Every activity bump
      and every unassignment pushes a fresh ``(-activity, var)`` entry, so
      the heap grows with the *bump* count (tens of bumps per conflict)
      and pops wade through stale entries;
    * ``indexed-heap`` — the shipped design: one entry per unassigned
      variable, a position index so a bump sifts the entry in place, and
      re-insertion only when backtracking actually unassigns a decision.

    All three compute the exact same argmax (max activity, ties to the
    lowest variable index), which the harness *asserts* via identical
    conflict/decision counts and identical proven minima.  The churn
    profile (bumps, picks, stale pops, re-inserts per conflict) is printed
    first — it is the measurement the indexed design is tuned against:
    bumps dominate picks by an order of magnitude, so the winning design
    is the one whose *bump* path is cheapest (an in-place sift), not the
    one with the cheapest pop.

``propagation``
    End-to-end propagation throughput (propagations/second) of the flat
    clause-arena hot path on the same instance, selectable per backend
    (``--backend auto|pure|compiled``).  This is the number behind the
    props/sec acceptance gate tracked in ``benchmarks/BENCH_sweep.json``.

``artifacts``
    Per-stage overhead of the solve-artifact round trip (PR 9): export the
    live session's shared-layer learned clauses, re-base them to template
    numbering (``clauses_to_template``), persist and re-load them through a
    disk-backed ``ResultStore`` artifact row, build the template→target
    translation table (``template_clause_remap``) and import into a fresh
    same-skeleton session.  Real solves export few shared-layer clauses, so
    the batch is padded to ``--clauses`` (default 1000) by *weakening* the
    real exports — a superset of an implied clause is still implied, so
    every padded clause remains legal warm-start material.  Each stage is
    reported as wall time and normalised per 1k clauses, keeping the
    seeding cost visible next to propagation throughput.

Usage::

    PYTHONPATH=src python benchmarks/micro_solver.py branching
    PYTHONPATH=src python benchmarks/micro_solver.py propagation --backend pure
    PYTHONPATH=src python benchmarks/micro_solver.py branching \
        --circuit ham3_102 --device qx4 --repeat 3
    PYTHONPATH=src python benchmarks/micro_solver.py artifacts --clauses 2000
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

import repro.sat.session as session_module
from repro.arch.cache import shared_permutation_table
from repro.arch.devices import ibm_qx4, sweep_grid8
from repro.benchlib.generators import benchmark_circuit
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.exact.encoding import build_encoding, clear_skeleton_cache
from repro.exact.sweep import (
    artifact_key,
    clauses_to_template,
    template_clause_remap,
)
from repro.sat._backend import available_backends, backend_module
from repro.sat._solver_core import CDCLSolver as _PureCDCL
from repro.sat.optimize import OptimizingSolver
from repro.service.store import ResultStore

_DEVICES = {"qx4": ibm_qx4, "grid8": sweep_grid8}


# ----------------------------------------------------------------------
# Brancher variants (decision-identical to the shipped indexed heap)
# ----------------------------------------------------------------------
class LinearScanSolver(_PureCDCL):
    """The pre-overhaul brancher: argmax scan over every variable.

    ``_bump_var`` and ``_backtrack`` skip all heap maintenance so the
    variant pays exactly the costs the original solver paid — a fair race.
    """

    def _bump_var(self, var: int) -> None:
        act = self._activity
        value = act[var] + self._var_inc
        act[var] = value
        if value > 1e100:
            for v in range(1, self._num_vars + 1):
                act[v] *= 1e-100
            self._var_inc *= 1e-100

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        reasons = self._reason
        for literal in reversed(trail[target:]):
            var = literal if literal > 0 else -literal
            assign[var] = None
            reasons[var] = 0
        del trail[target:]
        del self._trail_lim[level:]
        self._propagation_head = len(trail)

    def _pick_branch_variable(self) -> Optional[int]:
        assign = self._assign
        activity = self._activity
        best_var = None
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if assign[var] is None and activity[var] > best_act:
                best_act = activity[var]
                best_var = var
        return best_var


class LazyHeapSolver(_PureCDCL):
    """The naive lazy-heapq brancher PR 5 measured as a regression.

    Entries are ``(-activity, var)`` tuples; min-heap order therefore
    yields the highest activity first with ties broken toward the lowest
    variable — the same argmax as the other variants.  An entry is valid
    iff its variable is unassigned *and* the stored activity still equals
    the variable's current activity (a bump while buried pushes a fresh
    entry above the stale one).  Rescales invalidate every stored entry at
    once, so the heap is reseeded from the unassigned variables; variables
    assigned at rescale time re-enter with their current activity when
    backtracking unassigns them.
    """

    def __init__(self, cnf=None):
        self._lazy = []
        super().__init__(cnf)

    def _ensure_var(self, var: int) -> None:
        num = self._num_vars
        super()._ensure_var(var)
        lazy = self._lazy
        act = self._activity
        for v in range(num + 1, self._num_vars + 1):
            heapq.heappush(lazy, (-act[v], v))

    def _bump_var(self, var: int) -> None:
        act = self._activity
        value = act[var] + self._var_inc
        act[var] = value
        if value > 1e100:
            for v in range(1, self._num_vars + 1):
                act[v] *= 1e-100
            self._var_inc *= 1e-100
            assign = self._assign
            self._lazy = [
                (-act[v], v)
                for v in range(1, self._num_vars + 1)
                if assign[v] is None
            ]
            heapq.heapify(self._lazy)
        else:
            heapq.heappush(self._lazy, (-value, var))

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        reasons = self._reason
        act = self._activity
        lazy = self._lazy
        for literal in reversed(trail[target:]):
            var = literal if literal > 0 else -literal
            assign[var] = None
            reasons[var] = 0
            heapq.heappush(lazy, (-act[var], var))
        del trail[target:]
        del self._trail_lim[level:]
        self._propagation_head = len(trail)

    def _pick_branch_variable(self) -> Optional[int]:
        lazy = self._lazy
        assign = self._assign
        act = self._activity
        while lazy:
            neg_act, var = heapq.heappop(lazy)
            if assign[var] is None and -neg_act == act[var]:
                return var
        return None


class ChurnCountingSolver(_PureCDCL):
    """The shipped indexed heap, instrumented to measure branching churn."""

    def __init__(self, cnf=None):
        self.churn = {
            "bumps": 0,
            "rescales": 0,
            "picks": 0,
            "stale_pops": 0,
            "reinserts": 0,
            "unassignments": 0,
        }
        super().__init__(cnf)

    def _bump_var(self, var: int) -> None:
        churn = self.churn
        churn["bumps"] += 1
        if self._activity[var] + self._var_inc > 1e100:
            churn["rescales"] += 1
        super()._bump_var(var)

    def _pick_branch_variable(self) -> Optional[int]:
        assign = self._assign
        heap = self._heap
        churn = self.churn
        churn["picks"] += 1
        while heap:
            var = self._heap_pop()
            if assign[var] is None:
                return var
            churn["stale_pops"] += 1
        return None

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        self.churn["unassignments"] += len(self._trail) - target
        before = len(self._heap)
        super()._backtrack(level)
        self.churn["reinserts"] += len(self._heap) - before


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _build_instance(circuit_name: str, device_name: str):
    """A *fresh* encoding of the instance.

    Sessions allocate bound-encoding auxiliary variables from the formula's
    own pool, so an encoding must never be shared between timed runs — a
    reused CNF would grow run over run and skew both counters and timings.
    """
    clear_skeleton_cache()
    device = _DEVICES[device_name]()
    if circuit_name == "paper":
        circuit = paper_example_cnot_skeleton()
    else:
        circuit = benchmark_circuit(circuit_name)
    encoding = build_encoding(
        circuit.cnot_pairs(),
        circuit.num_qubits,
        device,
        permutation_table=shared_permutation_table(device),
    )
    return encoding


def _minimize_with(solver_class, circuit_name: str, device_name: str):
    """Run the full optimisation descent with *solver_class* as the CDCL core.

    Returns ``(wall_seconds, result, session)``; the encoding build is kept
    outside the timed region.
    """
    encoding = _build_instance(circuit_name, device_name)
    original = session_module.CDCLSolver
    session_module.CDCLSolver = solver_class
    try:
        optimizer = OptimizingSolver(encoding.cnf, encoding.objective)
        session = optimizer.make_session()
        start = time.perf_counter()
        result = optimizer.minimize(session=session)
        wall = time.perf_counter() - start
    finally:
        session_module.CDCLSolver = original
    return wall, result, session


def run_branching(args) -> int:
    probe = _build_instance(args.circuit, args.device)
    print(
        f"instance: {args.circuit} on {args.device} "
        f"({probe.cnf.num_vars} vars, {len(probe.cnf.clauses)} clauses)"
    )

    # Churn profile first: the measurement the design is chosen against.
    _, profile_result, profile_session = _minimize_with(
        ChurnCountingSolver, args.circuit, args.device
    )
    churn = profile_session.solver.churn
    conflicts = max(1, profile_result.conflicts)
    print(
        f"\nchurn profile over {profile_result.conflicts} conflicts "
        f"(proven minimum {profile_result.objective}):"
    )
    for key, value in churn.items():
        print(f"  {key:>14}: {value:>9}  ({value / conflicts:8.2f} per conflict)")
    print(
        "  -> bumps outnumber picks "
        f"{churn['bumps'] / max(1, churn['picks']):.1f}x and the lazy design "
        "pays a heapq push per bump AND per unassignment; the indexed heap "
        f"sifts bumps in place and re-inserts only the "
        f"{churn['reinserts'] / conflicts:.0f}/conflict variables actually "
        "missing from the heap.\n"
    )

    variants = [
        ("linear-scan", LinearScanSolver),
        ("lazy-heapq", LazyHeapSolver),
        ("indexed-heap", _PureCDCL),
    ]
    reference = None
    print(f"{'variant':>14} {'wall (s)':>10} {'conflicts':>10} {'decisions':>10}")
    failures = 0
    for name, solver_class in variants:
        best_wall = None
        for _ in range(max(1, args.repeat)):
            wall, result, session = _minimize_with(
                solver_class, args.circuit, args.device
            )
            if best_wall is None or wall < best_wall:
                best_wall = wall
        decisions = session.solver.statistics["decisions"]
        fingerprint = (result.objective, result.conflicts, decisions)
        if reference is None:
            reference = fingerprint
        elif fingerprint != reference:
            failures += 1
            print(
                f"  DIVERGENCE: {name} produced {fingerprint}, "
                f"expected {reference}",
                file=sys.stderr,
            )
        print(
            f"{name:>14} {best_wall:>10.4f} {result.conflicts:>10} "
            f"{decisions:>10}"
        )
    if failures:
        print("branching variants diverged; see above", file=sys.stderr)
        return 1
    print(
        "\nall variants: identical minima, conflicts and decisions "
        "(decision-identical by construction, asserted above)."
    )
    return 0


def run_propagation(args) -> int:
    if args.backend == "auto":
        backend_names = [available_backends()[-1]]
    else:
        backend_names = [args.backend]
    probe = _build_instance(args.circuit, args.device)
    print(
        f"instance: {args.circuit} on {args.device} "
        f"({probe.cnf.num_vars} vars, {len(probe.cnf.clauses)} clauses)"
    )
    print(f"{'backend':>10} {'wall (s)':>10} {'propagations':>13} {'props/sec':>12}")
    status = 0
    for name in backend_names:
        module = backend_module(name)
        if module is None:
            print(f"{name:>10}  unavailable (extension not built)")
            status = 1
            continue
        best = None
        for _ in range(max(1, args.repeat)):
            wall, result, session = _minimize_with(
                module.CDCLSolver, args.circuit, args.device
            )
            propagations = session.solver.statistics["propagations"]
            if best is None or wall < best[0]:
                best = (wall, propagations)
        wall, propagations = best
        print(
            f"{name:>10} {wall:>10.4f} {propagations:>13} "
            f"{propagations / wall:>12.0f}"
        )
    return status


# ----------------------------------------------------------------------
# Artifact round-trip (solve-artifact warm-start overhead)
# ----------------------------------------------------------------------
def _weakened_batch(exported, x_var_limit: int, count: int):
    """Pad real exported clauses to *count* by weakening.

    Any superset of an implied clause is implied, so appending two fresh
    x-block literals to a real export yields a distinct clause that is
    still legal warm-start material — the batch exercises the exact code
    paths (template rebase, store row, remap, import) with realistic
    literal distributions at a controlled size.
    """
    batch = [list(clause) for clause in exported[:count]]
    if not exported:
        return batch
    bases = itertools.cycle(exported)
    pairs = itertools.combinations(range(1, x_var_limit + 1), 2)
    for first, second in pairs:
        if len(batch) >= count:
            break
        base = next(bases)
        used = {abs(literal) for literal in base}
        if first in used or second in used:
            continue
        batch.append(list(base) + [-first, -second])
    return batch


def run_artifacts(args) -> int:
    encoding = _build_instance(args.circuit, args.device)
    device = _DEVICES[args.device]()
    if args.circuit == "paper":
        circuit = paper_example_cnot_skeleton()
    else:
        circuit = benchmark_circuit(args.circuit)
    gates = circuit.cnot_pairs()
    spots = list(range(len(gates)))

    # One real solve accumulates the learned clauses the export draws from.
    optimizer = OptimizingSolver(encoding.cnf, encoding.objective)
    session = optimizer.make_session()
    result = optimizer.minimize(session=session)
    print(
        f"instance: {args.circuit} on {args.device} "
        f"({encoding.cnf.num_vars} vars, {len(encoding.cnf.clauses)} clauses, "
        f"minimum {result.objective} in {result.conflicts} conflicts)"
    )

    start = time.perf_counter()
    exported = session.export_learned(var_ok=encoding.is_shared_variable)
    export_wall = time.perf_counter() - start
    if not exported:
        print("no shared-layer clauses exported; nothing to measure")
        return 1
    batch = _weakened_batch(exported, encoding.x_var_limit, args.clauses)
    spot_var_count = encoding.spot_var_end - encoding.spot_var_start
    print(
        f"real export: {len(exported)} shared-layer clauses in "
        f"{export_wall * 1e6:.0f} us; batch padded to {len(batch)} by "
        "weakening (supersets of implied clauses stay implied)\n"
    )

    key = artifact_key(gates, circuit.num_qubits, device, spots)
    repeat = max(1, args.repeat)
    stages = {}

    def _best(stage, thunk):
        best = None
        value = None
        for _ in range(repeat):
            start = time.perf_counter()
            value = thunk()
            wall = time.perf_counter() - start
            if best is None or wall < best:
                best = wall
        stages[stage] = best
        return value

    template = _best(
        "to_template",
        lambda: clauses_to_template(
            batch, encoding.x_var_limit, encoding.spot_var_start
        ),
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "artifacts.sqlite3")
        payloads = [
            {
                "version": 1,
                "x_var_limit": encoding.x_var_limit,
                "spot_var_count": spot_var_count,
                "clauses": template,
                "bounds": {},
                "schedule": None,
                "objective": None,
            }
            for _ in range(repeat)
        ]
        # A fresh key per repetition: put_artifact merges into existing
        # rows, and a merge over an ever-growing row would not measure the
        # first-write path the sweep actually takes.
        keys = [f"{key}#{index}" for index in range(repeat)]
        puts = iter(range(repeat))
        _best(
            "store_put",
            lambda: store.put_artifact(keys[next(puts)], payloads[0]),
        )
        # Read through a memory-tier-less handle: the fresh-worker path
        # (``ArtifactCache`` reopens the database the same way), so the
        # JSON parse + SQLite read are actually on the clock.
        reader = ResultStore(store.path, max_memory_entries=0)
        loaded = _best("store_get", lambda: reader.get_artifact(keys[0]))
        assert loaded is not None and len(loaded["clauses"]) == len(batch)

    remap = _best(
        "remap_build",
        lambda: template_clause_remap(
            encoding.x_var_limit, spot_var_count, encoding
        ),
    )

    # A fresh same-skeleton session per repetition: imports dedupe, so a
    # second import into the same solver would measure the dedupe path.
    targets = []
    for _ in range(repeat):
        fresh = _build_instance(args.circuit, args.device)
        targets.append(OptimizingSolver(fresh.cnf, fresh.objective).make_session())
    sessions = iter(targets)
    imported = _best(
        "import",
        lambda: next(sessions).import_clauses(
            [tuple(clause) for clause in loaded["clauses"]], remap=remap
        ),
    )

    per_1k = 1000.0 / len(batch)
    print(f"{'stage':>12} {'wall (ms)':>10} {'ms per 1k clauses':>18}")
    for stage, wall in stages.items():
        print(f"{stage:>12} {wall * 1e3:>10.3f} {wall * 1e3 * per_1k:>18.3f}")
    total = sum(stages.values())
    print(f"{'round-trip':>12} {total * 1e3:>10.3f} {total * 1e3 * per_1k:>18.3f}")
    print(
        f"\nimported {imported}/{len(batch)} clauses into a fresh "
        "same-skeleton session (best of "
        f"{repeat} repetition{'s' if repeat != 1 else ''} per stage)."
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "section", choices=("branching", "propagation", "artifacts"),
        help="which micro-benchmark to run",
    )
    parser.add_argument(
        "--circuit", default="paper",
        help="instance: 'paper' or a benchmark circuit name (default: paper)",
    )
    parser.add_argument(
        "--device", default="qx4", choices=sorted(_DEVICES),
        help="target architecture (default: qx4)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timing repetitions; the best wall time is reported (default: 3)",
    )
    parser.add_argument(
        "--backend", default="auto", choices=("auto", "pure", "compiled"),
        help="propagation section only: solver backend (default: auto)",
    )
    parser.add_argument(
        "--clauses", type=int, default=1000,
        help="artifacts section only: batch size the round trip is "
        "measured on (default: 1000)",
    )
    args = parser.parse_args(argv)
    if args.section == "branching":
        return run_branching(args)
    if args.section == "artifacts":
        return run_artifacts(args)
    return run_propagation(args)


if __name__ == "__main__":
    sys.exit(main())
