"""Experiment E2 — Table 1, "Min. (Sec. 3)" columns.

For every Table-1 benchmark this regenerates the minimal-cost mapping to IBM
QX4 (total gate count ``c_min`` and runtime ``t``).  The minimum is computed
with the exact dynamic-programming engine, which provably yields the same
minimum as the paper's SAT formulation (see DESIGN.md); the SAT engine itself
is exercised on the tractable subset of instances in
``bench_table1_sat_engine.py``.
"""

import pytest

from repro.benchlib import benchmark_circuit, benchmark_names
from repro.benchlib.table1 import get_record
from repro.exact import DPMapper
from repro.verify import verify_result

from _table1_common import record_table1_info


@pytest.mark.parametrize("name", benchmark_names())
def test_minimal_mapping_cost(benchmark, qx4, name):
    """Minimal total gate count after mapping (the c_min column)."""
    record = get_record(name)
    circuit = benchmark_circuit(name)
    mapper = DPMapper(qx4)

    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)

    assert verify_result(result, qx4).compliant
    assert result.optimal
    # The mapped circuit can never be cheaper than the original.
    assert result.total_cost >= record.original_cost
    record_table1_info(benchmark, name, result, record.paper_minimal_cost)
