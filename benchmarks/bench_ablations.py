"""Ablation benchmarks for the design choices called out in DESIGN.md.

* objective search strategy of the optimiser (linear descent vs. binary
  search on the cost bound),
* exact engine choice (paper-style SAT formulation vs. DP oracle),
* heuristic baseline strength (Qiskit-0.4-style stochastic mapper vs. the
  SABRE-style look-ahead mapper).
"""

import pytest

from repro.benchlib import benchmark_circuit
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.exact import DPMapper, SATMapper
from repro.exact.encoding import build_encoding
from repro.heuristic import SabreLiteMapper, StochasticSwapMapper
from repro.sat.optimize import OptimizingSolver


def _example_encoding(qx4):
    subset_coupling = qx4.subgraph((0, 1, 2, 3))
    gates = paper_example_cnot_skeleton().cnot_pairs()
    return build_encoding(gates, 4, subset_coupling)


@pytest.mark.parametrize("strategy", ["linear", "binary"])
def test_optimizer_search_strategy(benchmark, qx4, strategy):
    """Linear descent vs. binary search on the same mapping instance."""
    encoding = _example_encoding(qx4)

    def run():
        return OptimizingSolver(encoding.cnf, encoding.objective).minimize(
            strategy=strategy
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.is_satisfiable
    benchmark.extra_info["objective"] = result.objective
    benchmark.extra_info["solver_calls"] = result.iterations
    benchmark.extra_info["conflicts"] = result.conflicts


@pytest.mark.parametrize("engine", ["sat", "dp"])
def test_exact_engine_choice(benchmark, qx4, engine):
    """Paper-style SAT engine vs. the DP oracle on the worked example."""
    circuit = paper_example_cnot_skeleton()
    if engine == "sat":
        mapper = SATMapper(qx4, use_subsets=True, time_limit=300.0)
    else:
        mapper = DPMapper(qx4)
    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)
    benchmark.extra_info["added_cost"] = result.added_cost
    benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("name", ["4mod5-v0_20", "alu-v0_27"])
@pytest.mark.parametrize("baseline", ["stochastic", "sabre"])
def test_heuristic_baseline_strength(benchmark, qx4, minimal_costs, name, baseline):
    """How far each heuristic generation sits above the exact minimum."""
    circuit = benchmark_circuit(name)
    if baseline == "stochastic":
        mapper = StochasticSwapMapper(qx4, trials=5, seed=0)
    else:
        mapper = SabreLiteMapper(qx4)
    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)
    assert result.added_cost >= minimal_costs[name]
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["added_cost"] = result.added_cost
    benchmark.extra_info["minimal_added_cost"] = minimal_costs[name]
