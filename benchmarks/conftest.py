"""Shared fixtures and helpers for the benchmark harness.

Every benchmark file regenerates one column group of the paper's Table 1.
Each benchmark run maps one Table-1 circuit with one engine/strategy, reports
the measured total cost next to the paper's reported value through
pytest-benchmark's ``extra_info`` mechanism, and asserts the structural
invariants that must hold regardless of the concrete stand-in circuits
(e.g. restricted strategies never beat the minimum, heuristics never beat the
exact engine).

Run with::

    pytest benchmarks/ --benchmark-only

Use ``--benchmark-columns=min,mean`` or ``--benchmark-json`` for
machine-readable output; ``examples/reproduce_table1.py`` prints the
full paper-vs-measured table in one go.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.arch import ibm_qx4
from repro.benchlib import benchmark_circuit, benchmark_names


@pytest.fixture(scope="session")
def qx4():
    """The IBM QX4 coupling map used throughout the paper's evaluation."""
    return ibm_qx4()


@pytest.fixture(scope="session")
def minimal_costs(qx4):
    """Minimal added cost per benchmark, computed once by the DP exact engine.

    Used by the strategy and heuristic benchmarks to report the measured
    Delta-min exactly like Table 1 does.  The engine is resolved through the
    mapper backend registry, like every other entry point.
    """
    from repro.pipeline import get_mapper

    mapper = get_mapper("dp", qx4)
    costs = {}
    for name in benchmark_names():
        result = mapper.map(benchmark_circuit(name))
        costs[name] = result.added_cost
    return costs
