#!/usr/bin/env python
"""Perf smoke: solver iteration counts and sweep conflicts must not regress.

Two benchmark sections, both deterministic (the pure-Python CDCL solver's
behaviour is a function of the formula alone, so the comparisons are exact —
no timing calibration needed):

**Engine configs** — the paper's worked example (Fig. 1, minimal added cost 4
on IBM QX4) through the SAT and portfolio engines, including the full
optimizer strategy matrix (linear / binary / core-guided, seeded and
unseeded, plus a model warm start replaying a previously solved schedule).
Per-config ``solver_iterations`` are compared against the committed baseline
(``benchmarks/perf_smoke_baseline.json``): the proven minimum must match
exactly, the count must not exceed the ceiling, and the configs listed under
``strict_improvement_vs_pr2`` / ``strict_improvement_vs_linear`` must stay
strictly below their reference counts.

**Sweep configs** — subset sweeps (paper example + Table-1 3-qubit circuits
on QX4 and on the 8-qubit ``sweep_grid8`` benchmark device) exercising the
sweep-scale machinery: family ordering, lower-bound family pruning and
cross-family clause sharing.  Sweep-level *conflict totals* are pinned
against the baseline, the QX4 sweeps must additionally stay strictly below
the pre-sweep-sharing (PR 4) conflict counts recorded in
``pr4_reference_conflicts``, and the Table-1 QX4 sweeps must prune at least
one family without solving it.

**Split configs** — windowed big-device mapping (``sat_split``): fixed-seed
random circuits on ``ibm_qx5`` (16 qubits) and ``ibm_tokyo`` (20 qubits),
each solved window-exact and stitched by the routed synthesizer — the
devices beyond the permutation-table wall.  The mapped results are
validated (coupling compliance + cost bookkeeping) and their wall numbers
ride along in the recorded history.

**Artifact configs** — the warm-start round trip of the solve-artifact
store: the ``3_17_13`` sweep on ``sweep_grid8`` runs twice against one
shared (temporary) :class:`~repro.service.store.ResultStore`.  The cold run
populates the artifact table (learned clauses, per-family lower bounds,
best schedules keyed by encoding skeleton); the warm run must hit at least
one artifact row and finish with *strictly fewer* sweep conflicts than the
cold run — the guard that keeps the service's learning loop bought.
``--warm-start-only`` runs just this section (the CI ``warm-start`` job).

**Exact-table pin** — after clearing the process caches, small-device flows
(paper example on QX4 and on ``sweep_grid8``) are re-run and the
``synthesizer_routed_selected`` counter must stay zero: devices of at most
8 qubits must keep going through the provably minimal permutation table,
bit-identical to the pre-synthesis behaviour.

``--record`` additionally runs the sweep suite a second time with sharing
and pruning disabled (the ``--no-share --no-prune`` ablation) and appends a
schema-versioned entry — per-config wall seconds, conflicts, propagations,
clauses shared/imported, families pruned, plus the ablation numbers and the
end-to-end wall-clock saving — to ``benchmarks/BENCH_sweep.json``, the
repository's committed wall-clock trajectory.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --baseline benchmarks/perf_smoke_baseline.json \
        --output perf-smoke.json --record
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.arch.cache import cache_stats, clear_caches, shared_permutation_table
from repro.arch.devices import ibm_qx4, ibm_qx5, ibm_tokyo, sweep_grid8
from repro.benchlib.generators import benchmark_circuit, random_cnot_circuit
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.circuit.circuit import QuantumCircuit
from repro.exact.encoding import clear_skeleton_cache
from repro.exact.sat_mapper import SATMapper
from repro.exact.splitting import SplitSATMapper
from repro.pipeline.portfolio import PortfolioMapper
from repro.sat.solver import solver_backend_provenance


#: Seed bound for the *_seeded configs (the known minimum of the example).
SEED_BOUND = 4

#: Schema version of the entries appended to BENCH_sweep.json.
#: v2 adds the ``environment`` stamp (python, platform, solver backend,
#: git revision) so wall-clock history stays attributable across machines
#: and backends; v3 adds the ``split_configs`` rows (windowed ``sat_split``
#: on ibm_qx5 and ibm_tokyo); v4 adds the ``artifact_configs`` cold/warm
#: rows (grid8 sweep twice against one shared solve-artifact store, with
#: the seeding hit counters) and the fixed-seed ``corpus_*`` sweep rows
#: from the :mod:`repro.benchlib` generators.  Earlier entries remain
#: valid — every addition is additive.
BENCH_SWEEP_SCHEMA = 4


def _configs():
    """The measured engine configurations, deterministic order.

    Each value is ``(mapper factory, map kwargs)``.  The ``sat`` config runs
    first: ``sat_model_seeded`` replays its schedule as the incumbent model
    (the store-backed warm-start path, without needing a store here).
    """
    return {
        "sat": (lambda: SATMapper(ibm_qx4()), {}),
        "sat_binary": (lambda: SATMapper(ibm_qx4(), optimizer="binary"), {}),
        "sat_core": (lambda: SATMapper(ibm_qx4(), optimizer="core"), {}),
        "sat_linear_seeded": (
            lambda: SATMapper(ibm_qx4()), {"upper_bound": SEED_BOUND}
        ),
        "sat_core_seeded": (
            lambda: SATMapper(ibm_qx4(), optimizer="core"),
            {"upper_bound": SEED_BOUND},
        ),
        "sat_model_seeded": (lambda: SATMapper(ibm_qx4()), "MODEL_SEED"),
        "portfolio": (lambda: PortfolioMapper(ibm_qx4()), {}),
        "portfolio_subsets": (
            lambda: PortfolioMapper(ibm_qx4(), use_subsets=True), {}
        ),
        "sat_subsets": (lambda: SATMapper(ibm_qx4(), use_subsets=True), {}),
    }


def _sweep_configs():
    """The subset-sweep benchmark: (architecture factory, circuit factory).

    QX4 carries the paper-parity criteria (identical proven minima, strictly
    fewer conflicts than PR 4, at least one family pruned); the 8-qubit
    ``sweep_grid8`` device scales the family count up (8 three-qubit
    families, 18 four-qubit families) so pruning and sharing dominate the
    end-to-end wall clock.
    """
    return {
        "paper_qx4": (ibm_qx4, paper_example_cnot_skeleton),
        "ex-1_166_qx4": (ibm_qx4, lambda: benchmark_circuit("ex-1_166")),
        "ham3_102_qx4": (ibm_qx4, lambda: benchmark_circuit("ham3_102")),
        "paper_grid8": (sweep_grid8, paper_example_cnot_skeleton),
        "ex-1_166_grid8": (sweep_grid8, lambda: benchmark_circuit("ex-1_166")),
        "ham3_102_grid8": (sweep_grid8, lambda: benchmark_circuit("ham3_102")),
        "3_17_13_grid8": (sweep_grid8, lambda: benchmark_circuit("3_17_13")),
        # Fixed-seed corpus row from the benchlib generators: a chained
        # random CNOT netlist (MQT-style reversible structure) swept on the
        # 8-qubit grid — the suite's guard that the sweep machinery keeps
        # working off the hand-picked Table-1 circuits too.
        "corpus_rand3x10_grid8": (
            sweep_grid8, lambda: random_cnot_circuit(3, 10, seed=7)
        ),
    }


def _split_circuit(num_qubits: int, num_cnots: int, seed: int, name: str):
    """A fixed-seed random H+CNOT circuit (deterministic across runs)."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name)
    for index in range(num_cnots):
        control, target = rng.sample(range(num_qubits), 2)
        if index % 3 == 0:
            circuit.h(control)
        circuit.cx(control, target)
    return circuit


def _split_configs():
    """The windowed big-device benchmark: (architecture, circuit) factories."""
    return {
        "qx5_16q_split": (
            ibm_qx5, lambda: _split_circuit(16, 12, seed=3, name="qx5_16q")
        ),
        "tokyo_20q_split": (
            ibm_tokyo, lambda: _split_circuit(20, 12, seed=2, name="tokyo_20q")
        ),
    }


def measure_splits():
    """Run the windowed ``sat_split`` suite on the big devices.

    Every result is validated (coupling compliance and cost bookkeeping
    recomputed from the mapped gates) — a benchmark row that silently maps
    incorrectly would poison the wall-clock history.
    """
    measurements = {}
    for name, (arch_factory, circuit_factory) in _split_configs().items():
        coupling = arch_factory()
        mapper = SplitSATMapper(
            coupling, window_size=4, qubit_cap=4, optimizer="core"
        )
        gc.collect()
        start = time.monotonic()
        result = mapper.map(circuit_factory())
        elapsed = time.monotonic() - start
        result.validate(coupling)
        stats = result.statistics
        measurements[name] = {
            "added_cost": result.added_cost,
            "split_windows": stats["split_windows"],
            "stitch_swaps_total": stats["stitch_swaps_total"],
            "solver_conflicts": stats["solver_conflicts"],
            "solver_iterations": stats["solver_iterations"],
            "subsets_solved": stats.get("subsets_solved", 0),
            "wall_seconds": round(elapsed, 4),
        }
    return measurements


def check_exact_table_pin():
    """Small devices must keep selecting the exact table, never the router.

    Clears the process-wide caches (and their counters), replays the paper
    example on the two small benchmark devices, and fails when any
    synthesizer selection went to the routed backend — the guarantee that
    ≤8-qubit results stay provably minimal and bit-identical.
    """
    failures = []
    clear_caches()
    circuit = paper_example_cnot_skeleton()
    SATMapper(ibm_qx4()).map(circuit)
    SATMapper(sweep_grid8(), use_subsets=True).map(circuit)
    stats = cache_stats()
    if stats["synthesizer_routed_selected"] != 0:
        failures.append(
            "exact-table pin: small-device flows selected the routed "
            f"synthesizer {stats['synthesizer_routed_selected']} time(s)"
        )
    if stats["synthesizer_table_selected"] < 1:
        failures.append(
            "exact-table pin: no exact-table synthesizer selection recorded"
        )
    return failures


def measure():
    """Map the paper example with every config; returns per-config metrics."""
    circuit = paper_example_cnot_skeleton()
    measurements = {}
    reference_result = None
    for name, (factory, kwargs) in _configs().items():
        if kwargs == "MODEL_SEED":
            assert reference_result is not None, "'sat' must run first"
            kwargs = {
                "initial_model": reference_result.schedule.mappings,
                "initial_objective": reference_result.added_cost,
            }
        start = time.monotonic()
        result = factory().map(circuit, **kwargs)
        elapsed = time.monotonic() - start
        if name == "sat":
            reference_result = result
        measurements[name] = {
            "added_cost": result.added_cost,
            "solver_iterations": result.statistics["solver_iterations"],
            "solver_conflicts": result.statistics["solver_conflicts"],
            "descent_iterations": result.statistics.get("descent_iterations"),
            "cores_found": result.statistics.get("cores_found"),
            "subsets_solved": result.statistics.get("subsets_solved"),
            "family_reuses": result.statistics.get("family_reuses"),
            "wall_seconds": round(elapsed, 4),
        }
    return measurements


def measure_sweeps(share: bool = True, prune: bool = True):
    """Run the subset-sweep suite; returns per-config sweep metrics.

    The per-architecture reconstruction tables are warmed first so the wall
    numbers time the sweep itself, not the process-wide one-off caches; the
    encoding-skeleton cache is cleared per config so every sweep pays its
    own construction (and the ablation's from-scratch builds are comparable).
    """
    for arch_factory in {f for f, _ in _sweep_configs().values()}:
        shared_permutation_table(arch_factory())
    measurements = {}
    for name, (arch_factory, circuit_factory) in _sweep_configs().items():
        clear_skeleton_cache()
        mapper = SATMapper(
            arch_factory(),
            use_subsets=True,
            share_clauses=share,
            prune_families=prune,
        )
        # Collect between configs so one sweep's garbage is not another
        # sweep's pause — wall numbers should time the sweep, not the GC.
        gc.collect()
        start = time.monotonic()
        result = mapper.map(circuit_factory())
        elapsed = time.monotonic() - start
        stats = result.statistics
        measurements[name] = {
            "added_cost": result.added_cost,
            "solver_conflicts": stats["solver_conflicts"],
            "solver_iterations": stats["solver_iterations"],
            "solver_propagations": stats["solver_propagations"],
            "families_total": stats.get("families_total", 0),
            "families_pruned": stats.get("families_pruned", 0),
            "clauses_exported": stats.get("clauses_exported", 0),
            "clauses_imported": stats.get("clauses_imported", 0),
            "wall_seconds": round(elapsed, 4),
        }
    return measurements


def measure_artifacts(circuit_name: str = "3_17_13"):
    """Cold-then-warm sweep against one shared solve-artifact store.

    Both runs map the same circuit on ``sweep_grid8`` with a fresh mapper;
    the only state carried between them is the artifact table of a
    temporary :class:`~repro.service.store.ResultStore` (learned clauses,
    per-family lower bounds and best schedules keyed by encoding
    skeleton).  The warm run's conflict saving is therefore attributable
    to artifact seeding alone.
    """
    from repro.service.store import ArtifactCache, ResultStore

    shared_permutation_table(sweep_grid8())
    measurements = {}
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(ResultStore.at(tmp))
        for phase in ("cold", "warm"):
            clear_skeleton_cache()
            mapper = SATMapper(sweep_grid8(), use_subsets=True)
            gc.collect()
            start = time.monotonic()
            result = mapper.map(benchmark_circuit(circuit_name), artifacts=cache)
            elapsed = time.monotonic() - start
            stats = result.statistics
            measurements[phase] = {
                "added_cost": result.added_cost,
                "solver_conflicts": stats["solver_conflicts"],
                "solver_iterations": stats["solver_iterations"],
                "families_pruned": stats.get("families_pruned", 0),
                "artifact_hits": stats.get("artifact_hits", 0),
                "artifact_misses": stats.get("artifact_misses", 0),
                "artifact_clauses_imported": stats.get(
                    "artifact_clauses_imported", 0
                ),
                "artifact_bounds_used": stats.get("artifact_bounds_used", 0),
                "artifact_models_used": stats.get("artifact_models_used", 0),
                "wall_seconds": round(elapsed, 4),
            }
    return measurements


def check_artifacts(measurements):
    """The warm run must hit the store and strictly beat the cold run."""
    failures = []
    cold, warm = measurements["cold"], measurements["warm"]
    if warm["added_cost"] != cold["added_cost"]:
        failures.append(
            "artifacts: warm run changed the proven minimum "
            f"({warm['added_cost']} != {cold['added_cost']})"
        )
    if warm["solver_conflicts"] >= cold["solver_conflicts"]:
        failures.append(
            "artifacts: warm-start conflicts not strictly below the cold "
            f"run ({warm['solver_conflicts']} >= {cold['solver_conflicts']})"
        )
    if warm["artifact_hits"] < 1:
        failures.append(
            "artifacts: warm run recorded no artifact-store hit "
            f"(hits={warm['artifact_hits']})"
        )
    return failures


def check(measurements, baseline):
    """Compare engine-config measurements against the baseline."""
    failures = []
    pr2 = baseline.get("pr2_reference_iterations", {})
    strict = set(baseline.get("strict_improvement_vs_pr2", []))
    strict_linear = set(baseline.get("strict_improvement_vs_linear", []))
    linear_iterations = measurements.get("sat", {}).get("solver_iterations")
    for name, expected in baseline["configs"].items():
        measured = measurements.get(name)
        if measured is None:
            failures.append(f"{name}: configuration was not measured")
            continue
        if measured["added_cost"] != expected["added_cost"]:
            failures.append(
                f"{name}: proven minimum changed "
                f"({measured['added_cost']} != {expected['added_cost']})"
            )
        iterations = measured["solver_iterations"]
        if iterations > expected["max_iterations"]:
            failures.append(
                f"{name}: solver iterations regressed "
                f"({iterations} > baseline {expected['max_iterations']})"
            )
        if name in strict and name in pr2 and iterations >= pr2[name]:
            failures.append(
                f"{name}: iterations no longer strictly below the PR 2 "
                f"reference ({iterations} >= {pr2[name]})"
            )
        if (
            name in strict_linear
            and linear_iterations is not None
            and iterations >= linear_iterations
        ):
            failures.append(
                f"{name}: iterations no longer strictly below unseeded "
                f"linear descent ({iterations} >= {linear_iterations})"
            )
    return failures


def check_sweeps(measurements, baseline):
    """Compare sweep measurements against the baseline; returns failures."""
    failures = []
    pr4 = baseline.get("pr4_reference_conflicts", {})
    strict = set(baseline.get("strict_conflicts_vs_pr4", []))
    for name, expected in baseline.get("sweep_configs", {}).items():
        measured = measurements.get(name)
        if measured is None:
            failures.append(f"sweep {name}: configuration was not measured")
            continue
        if measured["added_cost"] != expected["added_cost"]:
            failures.append(
                f"sweep {name}: proven minimum changed "
                f"({measured['added_cost']} != {expected['added_cost']})"
            )
        conflicts = measured["solver_conflicts"]
        if conflicts > expected["max_conflicts"]:
            failures.append(
                f"sweep {name}: sweep conflicts regressed "
                f"({conflicts} > baseline {expected['max_conflicts']})"
            )
        if name in strict and name in pr4 and conflicts >= pr4[name]:
            failures.append(
                f"sweep {name}: conflicts no longer strictly below the "
                f"pre-sweep-sharing PR 4 reference "
                f"({conflicts} >= {pr4[name]})"
            )
        min_pruned = expected.get("min_families_pruned", 0)
        if measured["families_pruned"] < min_pruned:
            failures.append(
                f"sweep {name}: expected at least {min_pruned} pruned "
                f"families, saw {measured['families_pruned']}"
            )
    return failures


def _environment_stamp() -> dict:
    """Provenance of a recorded entry: interpreter, platform, backend, rev.

    Wall-clock history is only comparable when the machine and the solver
    backend are known; every entry records where its numbers came from.
    """
    stamp = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    stamp.update(solver_backend_provenance())
    try:
        stamp["git_revision"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        stamp["git_revision"] = "unknown"
    return stamp


def record_entry(sweep_on, sweep_off, splits, artifacts, path: Path) -> dict:
    """Append one schema-versioned sweep entry to BENCH_sweep.json."""
    wall_on = round(sum(m["wall_seconds"] for m in sweep_on.values()), 4)
    wall_off = round(sum(m["wall_seconds"] for m in sweep_off.values()), 4)
    cold_conflicts = artifacts["cold"]["solver_conflicts"]
    warm_conflicts = artifacts["warm"]["solver_conflicts"]
    entry = {
        "schema_version": BENCH_SWEEP_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmark": "subset sweeps (paper example + Table-1 3-qubit + "
                     "benchlib corpus, ibm_qx4 + sweep_grid8) + windowed "
                     "splits (ibm_qx5, ibm_tokyo) + artifact warm start "
                     "(3_17_13 on sweep_grid8, shared store)",
        "environment": _environment_stamp(),
        "configs": sweep_on,
        "ablation_configs": sweep_off,
        "split_configs": splits,
        "artifact_configs": artifacts,
        "artifact_conflict_saving_percent": round(
            100.0 * (1.0 - warm_conflicts / cold_conflicts), 1
        ) if cold_conflicts > 0 else 0.0,
        "split_wall_seconds_total": round(
            sum(m["wall_seconds"] for m in splits.values()), 4
        ),
        "wall_seconds_total": wall_on,
        "ablation_wall_seconds_total": wall_off,
        "wall_saving_percent": round(100.0 * (1.0 - wall_on / wall_off), 1)
        if wall_off > 0 else 0.0,
        "conflicts_total": sum(m["solver_conflicts"] for m in sweep_on.values()),
        "ablation_conflicts_total": sum(
            m["solver_conflicts"] for m in sweep_off.values()
        ),
        "families_pruned_total": sum(
            m["families_pruned"] for m in sweep_on.values()
        ),
        "clauses_imported_total": sum(
            m["clauses_imported"] for m in sweep_on.values()
        ),
    }
    if path.exists():
        history = json.loads(path.read_text())
    else:
        history = {"entries": []}
    history["schema_version"] = BENCH_SWEEP_SCHEMA
    history["entries"].append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "perf_smoke_baseline.json"),
        help="committed baseline JSON to compare against",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the measured numbers to this JSON file (CI artifact)",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="run the sweep ablation and append a schema-versioned entry "
        "(wall seconds, conflicts, clauses shared, families pruned) to "
        "--bench-history",
    )
    parser.add_argument(
        "--bench-history",
        default=str(Path(__file__).parent / "BENCH_sweep.json"),
        help="sweep wall-clock history file appended to by --record",
    )
    parser.add_argument(
        "--no-share", action="store_true",
        help="ablation: disable cross-family clause sharing and encoding-"
        "skeleton reuse in the sweep configs",
    )
    parser.add_argument(
        "--no-prune", action="store_true",
        help="ablation: disable lower-bound family pruning in the sweep "
        "configs",
    )
    parser.add_argument(
        "--warm-start-only", action="store_true",
        help="run only the artifact cold/warm section (the CI warm-start "
        "job): grid8 sweep twice against one shared solve-artifact store; "
        "fails unless the warm run hits the store and finishes with "
        "strictly fewer conflicts",
    )
    args = parser.parse_args(argv)

    if args.warm_start_only:
        artifacts = measure_artifacts()
        for phase in ("cold", "warm"):
            metrics = artifacts[phase]
            print(
                f"artifact {phase:4s} cost={metrics['added_cost']:3d} "
                f"conflicts={metrics['solver_conflicts']:5d} "
                f"hits={metrics['artifact_hits']} "
                f"clauses={metrics['artifact_clauses_imported']:3d} "
                f"bounds={metrics['artifact_bounds_used']} "
                f"models={metrics['artifact_models_used']} "
                f"wall={metrics['wall_seconds']:.3f}s"
            )
        failures = check_artifacts(artifacts)
        if args.output:
            Path(args.output).write_text(
                json.dumps({"artifact_measurements": artifacts}, indent=2)
                + "\n"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("warm start OK: artifact seeding strictly reduced conflicts")
        return 0

    baseline = json.loads(Path(args.baseline).read_text())
    measurements = measure()
    share, prune = not args.no_share, not args.no_prune
    sweeps = measure_sweeps(share=share, prune=prune)
    splits = measure_splits()
    artifacts = measure_artifacts()

    report = {
        "benchmark": baseline.get("benchmark"),
        "measurements": measurements,
        "sweep_measurements": sweeps,
        "split_measurements": splits,
        "artifact_measurements": artifacts,
        "baseline_max_iterations": {
            name: config["max_iterations"]
            for name, config in baseline["configs"].items()
        },
        "baseline_max_sweep_conflicts": {
            name: config["max_conflicts"]
            for name, config in baseline.get("sweep_configs", {}).items()
        },
        "pr2_reference_iterations": baseline.get("pr2_reference_iterations"),
        "pr4_reference_conflicts": baseline.get("pr4_reference_conflicts"),
        "strict_improvement_vs_linear": baseline.get(
            "strict_improvement_vs_linear"
        ),
    }

    for name, metrics in measurements.items():
        print(
            f"{name:18s} cost={metrics['added_cost']} "
            f"iterations={metrics['solver_iterations']:3d} "
            f"conflicts={metrics['solver_conflicts']:5d} "
            f"wall={metrics['wall_seconds']:.3f}s"
        )
    for name, metrics in sweeps.items():
        print(
            f"sweep {name:14s} cost={metrics['added_cost']:3d} "
            f"conflicts={metrics['solver_conflicts']:5d} "
            f"pruned={metrics['families_pruned']}/{metrics['families_total']} "
            f"imported={metrics['clauses_imported']:3d} "
            f"wall={metrics['wall_seconds']:.3f}s"
        )

    for name, metrics in splits.items():
        print(
            f"split {name:14s} cost={metrics['added_cost']:4d} "
            f"windows={metrics['split_windows']} "
            f"stitch={metrics['stitch_swaps_total']:3d} "
            f"conflicts={metrics['solver_conflicts']:5d} "
            f"wall={metrics['wall_seconds']:.3f}s"
        )

    for phase, metrics in artifacts.items():
        print(
            f"artifact {phase:4s}      cost={metrics['added_cost']:3d} "
            f"conflicts={metrics['solver_conflicts']:5d} "
            f"hits={metrics['artifact_hits']} "
            f"clauses={metrics['artifact_clauses_imported']:3d} "
            f"bounds={metrics['artifact_bounds_used']} "
            f"models={metrics['artifact_models_used']} "
            f"wall={metrics['wall_seconds']:.3f}s"
        )

    failures = check(measurements, baseline)
    if share and prune:
        failures += check_sweeps(sweeps, baseline)
    else:
        print("sweep ablation flags active: baseline sweep checks skipped")
    failures += check_artifacts(artifacts)
    failures += check_exact_table_pin()

    if args.record:
        if share and prune:
            ablation = measure_sweeps(share=False, prune=False)
        else:
            ablation = sweeps
            sweeps = measure_sweeps(share=True, prune=True)
        entry = record_entry(
            sweeps, ablation, splits, artifacts, Path(args.bench_history)
        )
        print(
            f"recorded sweep entry: {entry['wall_seconds_total']:.3f}s vs "
            f"{entry['ablation_wall_seconds_total']:.3f}s ablation "
            f"({entry['wall_saving_percent']:.1f}% wall saved, "
            f"{entry['conflicts_total']} vs "
            f"{entry['ablation_conflicts_total']} conflicts; warm start "
            f"saved {entry['artifact_conflict_saving_percent']:.1f}% "
            "of sweep conflicts)"
        )
        report["bench_sweep_entry"] = entry

    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf smoke OK: no iteration or sweep-conflict regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
