#!/usr/bin/env python
"""Perf smoke: solver iteration counts of the solving core must not regress.

Runs the paper's worked example (Fig. 1, minimal added cost 4 on IBM QX4)
through the SAT and portfolio engines — including the full optimizer
strategy matrix (linear / binary / core-guided, seeded and unseeded, plus a
model warm start replaying a previously solved schedule) — and compares the
per-config solver iteration counts against the committed baseline
(``benchmarks/perf_smoke_baseline.json``):

* the proven minimum objective must match the baseline exactly,
* ``solver_iterations`` must not exceed the committed ceiling,
* for the configs listed under ``strict_improvement_vs_pr2`` the count must
  additionally stay strictly below the pre-incremental-core (PR 2) numbers
  recorded in ``pr2_reference_iterations`` — the incremental ``SolveSession``
  (no fresh solver per probe, no CNF clone per bound) is what bought the
  improvement, and this guard keeps it bought,
* for the configs listed under ``strict_improvement_vs_linear`` the count
  must stay strictly below unseeded linear descent's measured count — the
  core-guided strategy and the model warm start earn their keep in oracle
  calls, and this guard keeps that earned.

Iteration counts of the pure-Python CDCL solver are deterministic for a
fixed formula, so the comparison is exact — no timing calibration needed.
Wall-clock numbers are recorded in the output JSON for information only.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --baseline benchmarks/perf_smoke_baseline.json \
        --output perf-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.arch.devices import ibm_qx4
from repro.benchlib.paper_example import paper_example_cnot_skeleton
from repro.exact.sat_mapper import SATMapper
from repro.pipeline.portfolio import PortfolioMapper


#: Seed bound for the *_seeded configs (the known minimum of the example).
SEED_BOUND = 4


def _configs():
    """The measured engine configurations, deterministic order.

    Each value is ``(mapper factory, map kwargs)``.  The ``sat`` config runs
    first: ``sat_model_seeded`` replays its schedule as the incumbent model
    (the store-backed warm-start path, without needing a store here).
    """
    return {
        "sat": (lambda: SATMapper(ibm_qx4()), {}),
        "sat_binary": (lambda: SATMapper(ibm_qx4(), optimizer="binary"), {}),
        "sat_core": (lambda: SATMapper(ibm_qx4(), optimizer="core"), {}),
        "sat_linear_seeded": (
            lambda: SATMapper(ibm_qx4()), {"upper_bound": SEED_BOUND}
        ),
        "sat_core_seeded": (
            lambda: SATMapper(ibm_qx4(), optimizer="core"),
            {"upper_bound": SEED_BOUND},
        ),
        "sat_model_seeded": (lambda: SATMapper(ibm_qx4()), "MODEL_SEED"),
        "portfolio": (lambda: PortfolioMapper(ibm_qx4()), {}),
        "portfolio_subsets": (
            lambda: PortfolioMapper(ibm_qx4(), use_subsets=True), {}
        ),
        "sat_subsets": (lambda: SATMapper(ibm_qx4(), use_subsets=True), {}),
    }


def measure():
    """Map the paper example with every config; returns per-config metrics."""
    circuit = paper_example_cnot_skeleton()
    measurements = {}
    reference_result = None
    for name, (factory, kwargs) in _configs().items():
        if kwargs == "MODEL_SEED":
            assert reference_result is not None, "'sat' must run first"
            kwargs = {
                "initial_model": reference_result.schedule.mappings,
                "initial_objective": reference_result.added_cost,
            }
        start = time.monotonic()
        result = factory().map(circuit, **kwargs)
        elapsed = time.monotonic() - start
        if name == "sat":
            reference_result = result
        measurements[name] = {
            "added_cost": result.added_cost,
            "solver_iterations": result.statistics["solver_iterations"],
            "solver_conflicts": result.statistics["solver_conflicts"],
            "descent_iterations": result.statistics.get("descent_iterations"),
            "cores_found": result.statistics.get("cores_found"),
            "subsets_solved": result.statistics.get("subsets_solved"),
            "family_reuses": result.statistics.get("family_reuses"),
            "wall_seconds": round(elapsed, 4),
        }
    return measurements


def check(measurements, baseline):
    """Compare measurements against the baseline; returns failure messages."""
    failures = []
    pr2 = baseline.get("pr2_reference_iterations", {})
    strict = set(baseline.get("strict_improvement_vs_pr2", []))
    strict_linear = set(baseline.get("strict_improvement_vs_linear", []))
    linear_iterations = measurements.get("sat", {}).get("solver_iterations")
    for name, expected in baseline["configs"].items():
        measured = measurements.get(name)
        if measured is None:
            failures.append(f"{name}: configuration was not measured")
            continue
        if measured["added_cost"] != expected["added_cost"]:
            failures.append(
                f"{name}: proven minimum changed "
                f"({measured['added_cost']} != {expected['added_cost']})"
            )
        iterations = measured["solver_iterations"]
        if iterations > expected["max_iterations"]:
            failures.append(
                f"{name}: solver iterations regressed "
                f"({iterations} > baseline {expected['max_iterations']})"
            )
        if name in strict and name in pr2 and iterations >= pr2[name]:
            failures.append(
                f"{name}: iterations no longer strictly below the PR 2 "
                f"reference ({iterations} >= {pr2[name]})"
            )
        if (
            name in strict_linear
            and linear_iterations is not None
            and iterations >= linear_iterations
        ):
            failures.append(
                f"{name}: iterations no longer strictly below unseeded "
                f"linear descent ({iterations} >= {linear_iterations})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "perf_smoke_baseline.json"),
        help="committed baseline JSON to compare against",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the measured numbers to this JSON file (CI artifact)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    measurements = measure()
    report = {
        "benchmark": baseline.get("benchmark"),
        "measurements": measurements,
        "baseline_max_iterations": {
            name: config["max_iterations"]
            for name, config in baseline["configs"].items()
        },
        "pr2_reference_iterations": baseline.get("pr2_reference_iterations"),
        "strict_improvement_vs_linear": baseline.get(
            "strict_improvement_vs_linear"
        ),
    }
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for name, metrics in measurements.items():
        print(
            f"{name:18s} cost={metrics['added_cost']} "
            f"iterations={metrics['solver_iterations']:3d} "
            f"conflicts={metrics['solver_conflicts']:5d} "
            f"wall={metrics['wall_seconds']:.3f}s"
        )
    failures = check(measurements, baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf smoke OK: no iteration regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
