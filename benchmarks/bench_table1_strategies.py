"""Experiments E4-E6 — Table 1, "Performance Optimized (Section 4.2)" columns.

For every Table-1 benchmark this regenerates the mapping cost under the three
permutation-restriction strategies (disjoint qubits, odd gates, qubit
triangle), together with the number of permutation spots ``|G'|``.  The
structural claims of the paper are asserted on every instance:

* a restricted strategy can never produce a cheaper circuit than the minimum,
* the number of permutation spots shrinks from "disjoint" over "odd" towards
  "triangle" for circuits dominated by few-qubit blocks.
"""

import pytest

from repro.benchlib import benchmark_circuit, benchmark_names
from repro.benchlib.table1 import get_record
from repro.exact import DPMapper, get_strategy
from repro.verify import verify_result

from _table1_common import record_table1_info

_STRATEGY_TO_PAPER_COLUMN = {
    "disjoint": ("paper_disjoint_cost", "paper_disjoint_spots"),
    "odd": ("paper_odd_cost", "paper_odd_spots"),
    "triangle": ("paper_triangle_cost", "paper_triangle_spots"),
}


@pytest.mark.parametrize("strategy_name", ["disjoint", "odd", "triangle"])
@pytest.mark.parametrize("name", benchmark_names())
def test_restricted_strategy_cost(benchmark, qx4, minimal_costs, name, strategy_name):
    """Mapping cost and |G'| under one Section-4.2 strategy."""
    record = get_record(name)
    circuit = benchmark_circuit(name)
    strategy = get_strategy(strategy_name)
    mapper = DPMapper(qx4, strategy=strategy)

    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)

    assert verify_result(result, qx4).compliant
    # Restricting the permutation spots can never beat the true minimum.
    assert result.added_cost >= minimal_costs[name]

    cost_column, spots_column = _STRATEGY_TO_PAPER_COLUMN[strategy_name]
    record_table1_info(benchmark, name, result, getattr(record, cost_column))
    benchmark.extra_info["strategy"] = strategy_name
    benchmark.extra_info["measured_spots"] = result.num_permutation_spots
    benchmark.extra_info["paper_spots"] = getattr(record, spots_column)
    benchmark.extra_info["delta_min"] = result.added_cost - minimal_costs[name]
