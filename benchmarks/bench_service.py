#!/usr/bin/env python
"""Load benchmark of the network serving layer.

Boots a real :class:`~repro.server.supervisor.Supervisor` (worker
subprocesses, shared result store, load-aware routing) and drives a mixed
cached/uncached workload of 4-qubit circuits through ``POST /v1/jobs`` +
``GET /v1/jobs/{id}/result?wait=`` with a configurable number of concurrent
asyncio clients.  Per-request latency is measured submit-to-result; the run
reports nearest-rank p50/p99, mean, throughput and error rate.

Two modes:

* **default / --record** — run the workload against a 1-worker and a
  2-worker fleet (fresh store each, disjoint uncached circuits) and report
  both; ``--record`` appends a schema-versioned entry with an environment
  stamp (python, platform, solver backend, git revision) to
  ``benchmarks/BENCH_service.json``, the committed serving-throughput
  trajectory.  On an uncached mixed workload the 2-worker fleet must beat
  the 1-worker fleet: the whole point of the process supervisor is that the
  pure-Python solver's GIL stops mattering across processes.  That gate
  only makes sense with >= 2 CPUs; on a single-CPU machine (CI containers,
  cgroup-pinned boxes) it degrades to a no-collapse check and the recorded
  entry carries an explicit ``single_core_waiver`` so the number is never
  misread as a scaling result.
* **--smoke** — one short 2-worker run for CI: zero errors required and a
  generous p99 gate (``--p99-gate``); exit 1 on violation.
* **--chaos** — the same workload with a worker SIGKILLed mid-benchmark:
  every accepted job must still reach a terminal state (result or
  structured error) under its original id — zero lost jobs is the gate;
  p50/p99 and the error rate are appended to ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --record
    PYTHONPATH=src python benchmarks/bench_service.py --smoke
    PYTHONPATH=src python benchmarks/bench_service.py --chaos
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchlib.generators import random_cnot_circuit  # noqa: E402
from repro.circuit.qasm.writer import to_qasm  # noqa: E402
from repro.sat.solver import solver_backend_provenance  # noqa: E402
from repro.server import wire  # noqa: E402
from repro.server.supervisor import Supervisor  # noqa: E402

#: Schema version of the entries appended to BENCH_service.json.
BENCH_SERVICE_SCHEMA = 1

#: Qubits / CNOT count of the workload circuits.  16 CNOTs on 4 qubits puts
#: one uncached dp solve around 100ms — long enough that solver work (not
#: HTTP plumbing) dominates, short enough for a quick benchmark.
WORKLOAD_QUBITS = 4
WORKLOAD_CNOTS = 16


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _environment_stamp() -> dict:
    """Provenance of a recorded entry: interpreter, platform, backend, rev."""
    stamp = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": _available_cpus(),
    }
    stamp.update(solver_backend_provenance())
    try:
        stamp["git_revision"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        stamp["git_revision"] = "unknown"
    return stamp


def _workload(requests: int, cached_fraction: float, seed_base: int):
    """The request mix: submit bodies, cached ones repeating a hot circuit.

    ``seed_base`` keeps the uncached circuits of independent runs disjoint,
    so the 1-worker and 2-worker fleets both solve everything cold.
    """
    hot = to_qasm(
        random_cnot_circuit(
            WORKLOAD_QUBITS, WORKLOAD_CNOTS, seed=seed_base, locality=0.7
        )
    )
    bodies = []
    cached_every = max(2, round(1 / cached_fraction)) if cached_fraction else 0
    for index in range(requests):
        if cached_every and index % cached_every == 0 and index > 0:
            qasm, kind = hot, "cached"
        else:
            qasm = to_qasm(
                random_cnot_circuit(
                    WORKLOAD_QUBITS, WORKLOAD_CNOTS,
                    seed=seed_base + 1 + index, locality=0.7,
                )
            )
            kind = "uncached"
        envelope = {
            "type": "submit-request",
            "version": 1,
            "payload": {
                "qasm": qasm,
                "arch": "ibm_qx4",
                "engine": "dp",
                "circuit_name": f"bench_{kind}_{index}",
            },
        }
        bodies.append((json.dumps(envelope).encode(), kind))
    return bodies


def _quantile(values, q):
    """Nearest-rank quantile of a non-empty sorted list."""
    rank = max(0, min(len(values) - 1, int(q * len(values) + 0.5) - 1))
    return values[rank]


async def _client_loop(port, queue, latencies, errors, kinds_done):
    while True:
        try:
            body, kind = queue.get_nowait()
        except asyncio.QueueEmpty:
            return
        started = time.perf_counter()
        try:
            _status, _headers, raw = await wire.http_request(
                "127.0.0.1", port, "POST", "/v1/jobs", body=body, timeout=120,
                retries=2,
            )
            submitted = json.loads(raw)
            if submitted.get("type") != "job-status":
                raise RuntimeError(f"submit failed: {submitted}")
            job_id = submitted["payload"]["job_id"]
            status, _headers, raw = await wire.http_request(
                "127.0.0.1", port, "GET",
                f"/v1/jobs/{job_id}/result?wait=120", timeout=150, retries=2,
            )
            if status != 200:
                raise RuntimeError(f"result failed ({status}): {raw[:200]!r}")
        except Exception as error:  # noqa: BLE001 - every failure is counted
            errors.append(f"{type(error).__name__}: {error}")
        else:
            latencies.append(time.perf_counter() - started)
            kinds_done[kind] = kinds_done.get(kind, 0) + 1


#: Chaos mode: per-job polling deadline.  Redelivery after a worker kill
#: takes a few heartbeat intervals plus one re-solve; anything still
#: non-terminal after this long is genuinely lost.
CHAOS_JOB_DEADLINE_SECONDS = 90.0

#: Error codes that are legitimate *terminal* outcomes under chaos — the
#: job is settled, just not with a result.
CHAOS_TERMINAL_ERROR_CODES = frozenset(
    {"service-unavailable", "mapping-failed", "routing-failed",
     "deadline-exceeded", "job-cancelled"}
)


async def _chaos_client_loop(port, queue, ledger):
    """Like ``_client_loop`` but tracks every job to a terminal outcome.

    A worker kill mid-benchmark opens a window where the public id 404s
    (worker dead, redelivery pending) or the proxy answers 502 — both are
    transient and re-polled; only a job that never reaches a terminal
    state before the deadline counts as *lost*.
    """
    while True:
        try:
            body, kind = queue.get_nowait()
        except asyncio.QueueEmpty:
            return
        record = {"kind": kind, "outcome": None, "terminal": False}
        ledger.append(record)
        started = time.perf_counter()
        try:
            status, _headers, raw = await wire.http_request(
                "127.0.0.1", port, "POST", "/v1/jobs", body=body,
                timeout=120, retries=4,
            )
            submitted = json.loads(raw)
        except Exception as error:  # noqa: BLE001 - counted, not fatal
            # Never accepted: nothing to lose, but the submit error counts.
            record["outcome"] = f"submit-error:{type(error).__name__}"
            record["terminal"] = True
            continue
        if submitted.get("type") != "job-status":
            code = submitted.get("payload", {}).get("error_code", "unknown")
            record["outcome"] = f"submit-rejected:{code}"
            record["terminal"] = True
            continue
        record["job_id"] = submitted["payload"]["job_id"]
        deadline = time.monotonic() + CHAOS_JOB_DEADLINE_SECONDS
        while time.monotonic() < deadline:
            try:
                status, _headers, raw = await wire.http_request(
                    "127.0.0.1", port, "GET",
                    f"/v1/jobs/{record['job_id']}/result?wait=20",
                    timeout=60, retries=4,
                )
                envelope = json.loads(raw)
            except Exception:  # noqa: BLE001 - transport blip mid-restart
                await asyncio.sleep(0.5)
                continue
            if status == 200 and envelope.get("type") == "result-payload":
                record["outcome"] = "done"
                record["terminal"] = True
                record["latency"] = time.perf_counter() - started
                break
            code = envelope.get("payload", {}).get("error_code")
            if code in CHAOS_TERMINAL_ERROR_CODES:
                record["outcome"] = f"error:{code}"
                record["terminal"] = True
                break
            # 404 (dead worker, redelivery pending), 502 (proxy hit the
            # corpse), or a still-running 202: poll again.
            await asyncio.sleep(0.5)


async def run_chaos(
    *,
    requests: int,
    concurrency: int,
    cached_fraction: float,
    seed_base: int,
    kill_after: float,
) -> dict:
    """Chaos run: 2-worker fleet, one worker SIGKILLed mid-benchmark.

    The invariant under test is the ISSUE's: every accepted job reaches a
    terminal state under its original public id, even though one worker
    (and every job queued on it) dies without warning.
    """
    queue: asyncio.Queue = asyncio.Queue()
    for item in _workload(requests, cached_fraction, seed_base):
        queue.put_nowait(item)
    ledger: list = []
    killed = {}
    async with Supervisor(
        workers=2, engine="dp", service_workers=2
    ) as supervisor:
        async def _killer():
            await asyncio.sleep(kill_after)
            victim = supervisor.workers[0]
            if victim.pid:
                killed["worker_id"] = victim.worker_id
                killed["pid"] = victim.pid
                os.kill(victim.pid, signal.SIGKILL)

        started = time.perf_counter()
        killer = asyncio.ensure_future(_killer())
        await asyncio.gather(
            *(
                _chaos_client_loop(supervisor.port, queue, ledger)
                for _ in range(concurrency)
            )
        )
        killer.cancel()
        elapsed = time.perf_counter() - started
        try:
            _s, _h, raw = await wire.http_request(
                "127.0.0.1", supervisor.port, "GET", "/v1/stats",
                timeout=30, retries=2,
            )
            stats = json.loads(raw).get("payload", {}).get("stats", {})
        except Exception:  # noqa: BLE001 - stats are best-effort garnish
            stats = {}
        restarts = sum(handle.restarts for handle in supervisor.workers)
    latencies = sorted(
        record["latency"] for record in ledger if "latency" in record
    )
    lost = [record for record in ledger if not record["terminal"]]
    errored = [
        record for record in ledger
        if record["terminal"] and record["outcome"] != "done"
    ]
    summary = {
        "workers": 2,
        "requests": requests,
        "concurrency": concurrency,
        "completed": len(latencies),
        "errors": len(errored),
        "error_rate": len(errored) / requests if requests else 0.0,
        "lost_jobs": len(lost),
        "worker_killed": killed.get("worker_id"),
        "worker_restarts": restarts,
        "redeliveries": stats.get("redeliveries", 0),
        "journal_enabled": stats.get("journal_enabled", False),
        "wall_seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 3) if elapsed else 0,
    }
    if latencies:
        summary["latency"] = {
            "p50_seconds": round(_quantile(latencies, 0.50), 5),
            "p99_seconds": round(_quantile(latencies, 0.99), 5),
            "mean_seconds": round(sum(latencies) / len(latencies), 5),
            "max_seconds": round(latencies[-1], 5),
        }
    if errored:
        summary["error_samples"] = [
            record["outcome"] for record in errored[:5]
        ]
    summary["ledger"] = ledger
    return summary


async def run_load(
    *,
    workers: int,
    requests: int,
    concurrency: int,
    cached_fraction: float,
    seed_base: int,
    service_workers: int = 2,
) -> dict:
    """One full run: boot a fleet, push the workload, summarize."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in _workload(requests, cached_fraction, seed_base):
        queue.put_nowait(item)
    latencies: list = []
    errors: list = []
    kinds_done: dict = {}
    async with Supervisor(
        workers=workers, engine="dp", service_workers=service_workers
    ) as supervisor:
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _client_loop(
                    supervisor.port, queue, latencies, errors, kinds_done
                )
                for _ in range(concurrency)
            )
        )
        elapsed = time.perf_counter() - started
        restarts = sum(handle.restarts for handle in supervisor.workers)
    latencies.sort()
    summary = {
        "workers": workers,
        "requests": requests,
        "concurrency": concurrency,
        "completed": len(latencies),
        "errors": len(errors),
        "error_rate": len(errors) / requests if requests else 0.0,
        "cached_completed": kinds_done.get("cached", 0),
        "uncached_completed": kinds_done.get("uncached", 0),
        "wall_seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 3) if elapsed else 0,
        "worker_restarts": restarts,
    }
    if latencies:
        summary["latency"] = {
            "p50_seconds": round(_quantile(latencies, 0.50), 5),
            "p99_seconds": round(_quantile(latencies, 0.99), 5),
            "mean_seconds": round(sum(latencies) / len(latencies), 5),
            "max_seconds": round(latencies[-1], 5),
        }
    if errors:
        summary["error_samples"] = errors[:5]
    return summary


def _print_summary(label: str, summary: dict) -> None:
    latency = summary.get("latency", {})
    print(
        f"{label:12s} {summary['completed']}/{summary['requests']} ok, "
        f"{summary['errors']} errors, "
        f"{summary['throughput_rps']:7.2f} req/s, "
        f"p50 {latency.get('p50_seconds', float('nan')):.3f}s, "
        f"p99 {latency.get('p99_seconds', float('nan')):.3f}s "
        f"({summary['cached_completed']} cached / "
        f"{summary['uncached_completed']} uncached)"
    )


def record_entry(runs: dict, config: dict, path: Path) -> dict:
    entry = {
        "schema_version": BENCH_SERVICE_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmark": (
            "HTTP service load: mixed cached/uncached 4-qubit dp workload "
            "through the multi-process supervisor"
        ),
        "environment": _environment_stamp(),
        "config": config,
        "runs": runs,
    }
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {"schema_version": BENCH_SERVICE_SCHEMA, "entries": []}
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=60,
                        help="total requests per run (default 60)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="concurrent client loops (default 8)")
    parser.add_argument("--cached-fraction", type=float, default=0.25,
                        help="fraction of requests repeating the hot "
                        "circuit (default 0.25)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one short 2-worker run, zero errors "
                        "required, p99 gated")
    parser.add_argument("--p99-gate", type=float, default=30.0,
                        help="--smoke: maximum tolerated p99 latency in "
                        "seconds (default 30, deliberately generous — the "
                        "gate catches hangs, not noise)")
    parser.add_argument("--record", action="store_true",
                        help="append the 1-vs-2-worker comparison to "
                        "benchmarks/BENCH_service.json")
    parser.add_argument("--chaos", action="store_true",
                        help="kill one worker mid-benchmark; gate on zero "
                        "lost (non-terminal) jobs and append the entry to "
                        "benchmarks/BENCH_service.json")
    parser.add_argument("--kill-after", type=float, default=2.0,
                        help="--chaos: seconds into the run before the "
                        "worker is SIGKILLed (default 2.0)")
    parser.add_argument("--seed", type=int, default=7000,
                        help="--chaos: workload seed base (default 7000)")
    parser.add_argument("--output", default=None,
                        help="also write the run summaries to this JSON file")
    args = parser.parse_args(argv)

    if args.chaos:
        requests = min(args.requests, 36)
        summary = asyncio.run(
            run_chaos(
                requests=requests,
                concurrency=min(args.concurrency, 6),
                cached_fraction=args.cached_fraction,
                seed_base=args.seed,
                kill_after=args.kill_after,
            )
        )
        ledger = summary.pop("ledger")
        label = f"chaos(s={args.seed})"
        _print_summary(label, {
            **summary,
            "cached_completed": sum(
                1 for r in ledger if r["outcome"] == "done"
                and r["kind"] == "cached"
            ),
            "uncached_completed": sum(
                1 for r in ledger if r["outcome"] == "done"
                and r["kind"] == "uncached"
            ),
        })
        print(f"{'':12s} killed {summary['worker_killed']} after "
              f"{args.kill_after:.1f}s, {summary['worker_restarts']} "
              f"restart(s), {summary['redeliveries']} redeliveries, "
              f"{summary['lost_jobs']} lost")
        ok = True
        if summary["lost_jobs"]:
            lost_ids = [r.get("job_id") for r in ledger if not r["terminal"]]
            print(f"FAIL: {summary['lost_jobs']} job(s) never reached a "
                  f"terminal state: {lost_ids}")
            ok = False
        if not summary["journal_enabled"]:
            print("FAIL: job journal was not enabled — redelivery untested")
            ok = False
        if summary["worker_killed"] is None:
            print("FAIL: the workload finished before the kill fired — "
                  "raise --requests or lower --kill-after")
            ok = False
        if args.output:
            Path(args.output).write_text(json.dumps(
                {"summary": summary, "ledger": ledger,
                 "seed": args.seed, "pass": ok}, indent=1) + "\n")
        if ok:
            config = {
                "mode": "chaos",
                "requests": requests,
                "concurrency": min(args.concurrency, 6),
                "cached_fraction": args.cached_fraction,
                "kill_after_seconds": args.kill_after,
                "seed": args.seed,
                "faults": os.environ.get("REPRO_FAULTS", ""),
                "workload_qubits": WORKLOAD_QUBITS,
                "workload_cnots": WORKLOAD_CNOTS,
                "engine": "dp",
                "arch": "ibm_qx4",
            }
            path = Path(__file__).parent / "BENCH_service.json"
            record_entry({"chaos_workers_2": summary}, config, path)
            print(f"recorded entry -> {path}")
        print("chaos:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    if args.smoke:
        requests = min(args.requests, 24)
        summary = asyncio.run(
            run_load(
                workers=2,
                requests=requests,
                concurrency=min(args.concurrency, 4),
                cached_fraction=args.cached_fraction,
                seed_base=9000,
            )
        )
        _print_summary("smoke(w=2)", summary)
        runs = {"smoke_workers_2": summary}
        ok = True
        if summary["errors"]:
            print(f"FAIL: {summary['errors']} errors "
                  f"(samples: {summary.get('error_samples')})")
            ok = False
        if summary["completed"] != requests:
            print(f"FAIL: only {summary['completed']}/{requests} completed")
            ok = False
        p99 = summary.get("latency", {}).get("p99_seconds", float("inf"))
        if p99 > args.p99_gate:
            print(f"FAIL: p99 {p99:.3f}s exceeds the {args.p99_gate:.0f}s gate")
            ok = False
        if args.output:
            Path(args.output).write_text(json.dumps(runs, indent=1) + "\n")
        print("smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    runs = {}
    for workers in (1, 2):
        summary = asyncio.run(
            run_load(
                workers=workers,
                requests=args.requests,
                concurrency=args.concurrency,
                cached_fraction=args.cached_fraction,
                # Disjoint seed ranges: both fleets solve their uncached
                # circuits cold.
                seed_base=1000 * workers,
            )
        )
        runs[f"workers_{workers}"] = summary
        _print_summary(f"workers={workers}", summary)

    speedup = (
        runs["workers_2"]["throughput_rps"] / runs["workers_1"]["throughput_rps"]
        if runs["workers_1"]["throughput_rps"]
        else float("inf")
    )
    cpus = _available_cpus()
    print(f"2-worker speedup: {speedup:.2f}x on {cpus} CPU(s)")
    ok = True
    if runs["workers_1"]["errors"] or runs["workers_2"]["errors"]:
        print("FAIL: errors during the load run")
        ok = False
    single_core = cpus < 2
    if single_core:
        # One CPU: two solver processes cannot out-compute one, whatever
        # the serving layer does.  The gate degrades to "the supervisor's
        # extra hop must not collapse throughput" and the recorded entry
        # carries an explicit waiver so the number is never misread as a
        # scaling result.
        print("note: single-CPU machine — strict 2-worker > 1-worker gate "
              "waived (recorded with single_core_waiver); gating on "
              "no-collapse (>= 0.80x) instead")
        if speedup < 0.80:
            print("FAIL: 2-worker throughput collapsed versus 1 worker")
            ok = False
    elif runs["workers_2"]["throughput_rps"] <= runs["workers_1"]["throughput_rps"]:
        print("FAIL: 2-worker throughput must beat 1 worker on an "
              "uncached-dominated workload")
        ok = False

    if args.output:
        Path(args.output).write_text(json.dumps(runs, indent=1) + "\n")
    if args.record and ok:
        config = {
            "requests": args.requests,
            "concurrency": args.concurrency,
            "cached_fraction": args.cached_fraction,
            "workload_qubits": WORKLOAD_QUBITS,
            "workload_cnots": WORKLOAD_CNOTS,
            "engine": "dp",
            "arch": "ibm_qx4",
            "service_workers_per_process": 2,
            "speedup_2_vs_1": round(speedup, 3),
            "single_core_waiver": single_core,
        }
        path = Path(__file__).parent / "BENCH_service.json"
        record_entry(runs, config, path)
        print(f"recorded entry -> {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
