#!/usr/bin/env python
"""Load benchmark of the network serving layer.

Boots a real :class:`~repro.server.supervisor.Supervisor` (worker
subprocesses, shared result store, load-aware routing) and drives a mixed
cached/uncached workload of 4-qubit circuits through ``POST /v1/jobs`` +
``GET /v1/jobs/{id}/result?wait=`` with a configurable number of concurrent
asyncio clients.  Per-request latency is measured submit-to-result; the run
reports nearest-rank p50/p99, mean, throughput and error rate.

Two modes:

* **default / --record** — run the workload against a 1-worker and a
  2-worker fleet (fresh store each, disjoint uncached circuits) and report
  both; ``--record`` appends a schema-versioned entry with an environment
  stamp (python, platform, solver backend, git revision) to
  ``benchmarks/BENCH_service.json``, the committed serving-throughput
  trajectory.  On an uncached mixed workload the 2-worker fleet must beat
  the 1-worker fleet: the whole point of the process supervisor is that the
  pure-Python solver's GIL stops mattering across processes.  That gate
  only makes sense with >= 2 CPUs; on a single-CPU machine (CI containers,
  cgroup-pinned boxes) it degrades to a no-collapse check and the recorded
  entry carries an explicit ``single_core_waiver`` so the number is never
  misread as a scaling result.
* **--smoke** — one short 2-worker run for CI: zero errors required and a
  generous p99 gate (``--p99-gate``); exit 1 on violation.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --record
    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchlib.generators import random_cnot_circuit  # noqa: E402
from repro.circuit.qasm.writer import to_qasm  # noqa: E402
from repro.sat.solver import solver_backend_provenance  # noqa: E402
from repro.server import wire  # noqa: E402
from repro.server.supervisor import Supervisor  # noqa: E402

#: Schema version of the entries appended to BENCH_service.json.
BENCH_SERVICE_SCHEMA = 1

#: Qubits / CNOT count of the workload circuits.  16 CNOTs on 4 qubits puts
#: one uncached dp solve around 100ms — long enough that solver work (not
#: HTTP plumbing) dominates, short enough for a quick benchmark.
WORKLOAD_QUBITS = 4
WORKLOAD_CNOTS = 16


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _environment_stamp() -> dict:
    """Provenance of a recorded entry: interpreter, platform, backend, rev."""
    stamp = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": _available_cpus(),
    }
    stamp.update(solver_backend_provenance())
    try:
        stamp["git_revision"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        stamp["git_revision"] = "unknown"
    return stamp


def _workload(requests: int, cached_fraction: float, seed_base: int):
    """The request mix: submit bodies, cached ones repeating a hot circuit.

    ``seed_base`` keeps the uncached circuits of independent runs disjoint,
    so the 1-worker and 2-worker fleets both solve everything cold.
    """
    hot = to_qasm(
        random_cnot_circuit(
            WORKLOAD_QUBITS, WORKLOAD_CNOTS, seed=seed_base, locality=0.7
        )
    )
    bodies = []
    cached_every = max(2, round(1 / cached_fraction)) if cached_fraction else 0
    for index in range(requests):
        if cached_every and index % cached_every == 0 and index > 0:
            qasm, kind = hot, "cached"
        else:
            qasm = to_qasm(
                random_cnot_circuit(
                    WORKLOAD_QUBITS, WORKLOAD_CNOTS,
                    seed=seed_base + 1 + index, locality=0.7,
                )
            )
            kind = "uncached"
        envelope = {
            "type": "submit-request",
            "version": 1,
            "payload": {
                "qasm": qasm,
                "arch": "ibm_qx4",
                "engine": "dp",
                "circuit_name": f"bench_{kind}_{index}",
            },
        }
        bodies.append((json.dumps(envelope).encode(), kind))
    return bodies


def _quantile(values, q):
    """Nearest-rank quantile of a non-empty sorted list."""
    rank = max(0, min(len(values) - 1, int(q * len(values) + 0.5) - 1))
    return values[rank]


async def _client_loop(port, queue, latencies, errors, kinds_done):
    while True:
        try:
            body, kind = queue.get_nowait()
        except asyncio.QueueEmpty:
            return
        started = time.perf_counter()
        try:
            _status, _headers, raw = await wire.http_request(
                "127.0.0.1", port, "POST", "/v1/jobs", body=body, timeout=120,
            )
            submitted = json.loads(raw)
            if submitted.get("type") != "job-status":
                raise RuntimeError(f"submit failed: {submitted}")
            job_id = submitted["payload"]["job_id"]
            status, _headers, raw = await wire.http_request(
                "127.0.0.1", port, "GET",
                f"/v1/jobs/{job_id}/result?wait=120", timeout=150,
            )
            if status != 200:
                raise RuntimeError(f"result failed ({status}): {raw[:200]!r}")
        except Exception as error:  # noqa: BLE001 - every failure is counted
            errors.append(f"{type(error).__name__}: {error}")
        else:
            latencies.append(time.perf_counter() - started)
            kinds_done[kind] = kinds_done.get(kind, 0) + 1


async def run_load(
    *,
    workers: int,
    requests: int,
    concurrency: int,
    cached_fraction: float,
    seed_base: int,
    service_workers: int = 2,
) -> dict:
    """One full run: boot a fleet, push the workload, summarize."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in _workload(requests, cached_fraction, seed_base):
        queue.put_nowait(item)
    latencies: list = []
    errors: list = []
    kinds_done: dict = {}
    async with Supervisor(
        workers=workers, engine="dp", service_workers=service_workers
    ) as supervisor:
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _client_loop(
                    supervisor.port, queue, latencies, errors, kinds_done
                )
                for _ in range(concurrency)
            )
        )
        elapsed = time.perf_counter() - started
        restarts = sum(handle.restarts for handle in supervisor.workers)
    latencies.sort()
    summary = {
        "workers": workers,
        "requests": requests,
        "concurrency": concurrency,
        "completed": len(latencies),
        "errors": len(errors),
        "error_rate": len(errors) / requests if requests else 0.0,
        "cached_completed": kinds_done.get("cached", 0),
        "uncached_completed": kinds_done.get("uncached", 0),
        "wall_seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 3) if elapsed else 0,
        "worker_restarts": restarts,
    }
    if latencies:
        summary["latency"] = {
            "p50_seconds": round(_quantile(latencies, 0.50), 5),
            "p99_seconds": round(_quantile(latencies, 0.99), 5),
            "mean_seconds": round(sum(latencies) / len(latencies), 5),
            "max_seconds": round(latencies[-1], 5),
        }
    if errors:
        summary["error_samples"] = errors[:5]
    return summary


def _print_summary(label: str, summary: dict) -> None:
    latency = summary.get("latency", {})
    print(
        f"{label:12s} {summary['completed']}/{summary['requests']} ok, "
        f"{summary['errors']} errors, "
        f"{summary['throughput_rps']:7.2f} req/s, "
        f"p50 {latency.get('p50_seconds', float('nan')):.3f}s, "
        f"p99 {latency.get('p99_seconds', float('nan')):.3f}s "
        f"({summary['cached_completed']} cached / "
        f"{summary['uncached_completed']} uncached)"
    )


def record_entry(runs: dict, config: dict, path: Path) -> dict:
    entry = {
        "schema_version": BENCH_SERVICE_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmark": (
            "HTTP service load: mixed cached/uncached 4-qubit dp workload "
            "through the multi-process supervisor"
        ),
        "environment": _environment_stamp(),
        "config": config,
        "runs": runs,
    }
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {"schema_version": BENCH_SERVICE_SCHEMA, "entries": []}
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=60,
                        help="total requests per run (default 60)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="concurrent client loops (default 8)")
    parser.add_argument("--cached-fraction", type=float, default=0.25,
                        help="fraction of requests repeating the hot "
                        "circuit (default 0.25)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one short 2-worker run, zero errors "
                        "required, p99 gated")
    parser.add_argument("--p99-gate", type=float, default=30.0,
                        help="--smoke: maximum tolerated p99 latency in "
                        "seconds (default 30, deliberately generous — the "
                        "gate catches hangs, not noise)")
    parser.add_argument("--record", action="store_true",
                        help="append the 1-vs-2-worker comparison to "
                        "benchmarks/BENCH_service.json")
    parser.add_argument("--output", default=None,
                        help="also write the run summaries to this JSON file")
    args = parser.parse_args(argv)

    if args.smoke:
        requests = min(args.requests, 24)
        summary = asyncio.run(
            run_load(
                workers=2,
                requests=requests,
                concurrency=min(args.concurrency, 4),
                cached_fraction=args.cached_fraction,
                seed_base=9000,
            )
        )
        _print_summary("smoke(w=2)", summary)
        runs = {"smoke_workers_2": summary}
        ok = True
        if summary["errors"]:
            print(f"FAIL: {summary['errors']} errors "
                  f"(samples: {summary.get('error_samples')})")
            ok = False
        if summary["completed"] != requests:
            print(f"FAIL: only {summary['completed']}/{requests} completed")
            ok = False
        p99 = summary.get("latency", {}).get("p99_seconds", float("inf"))
        if p99 > args.p99_gate:
            print(f"FAIL: p99 {p99:.3f}s exceeds the {args.p99_gate:.0f}s gate")
            ok = False
        if args.output:
            Path(args.output).write_text(json.dumps(runs, indent=1) + "\n")
        print("smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    runs = {}
    for workers in (1, 2):
        summary = asyncio.run(
            run_load(
                workers=workers,
                requests=args.requests,
                concurrency=args.concurrency,
                cached_fraction=args.cached_fraction,
                # Disjoint seed ranges: both fleets solve their uncached
                # circuits cold.
                seed_base=1000 * workers,
            )
        )
        runs[f"workers_{workers}"] = summary
        _print_summary(f"workers={workers}", summary)

    speedup = (
        runs["workers_2"]["throughput_rps"] / runs["workers_1"]["throughput_rps"]
        if runs["workers_1"]["throughput_rps"]
        else float("inf")
    )
    cpus = _available_cpus()
    print(f"2-worker speedup: {speedup:.2f}x on {cpus} CPU(s)")
    ok = True
    if runs["workers_1"]["errors"] or runs["workers_2"]["errors"]:
        print("FAIL: errors during the load run")
        ok = False
    single_core = cpus < 2
    if single_core:
        # One CPU: two solver processes cannot out-compute one, whatever
        # the serving layer does.  The gate degrades to "the supervisor's
        # extra hop must not collapse throughput" and the recorded entry
        # carries an explicit waiver so the number is never misread as a
        # scaling result.
        print("note: single-CPU machine — strict 2-worker > 1-worker gate "
              "waived (recorded with single_core_waiver); gating on "
              "no-collapse (>= 0.80x) instead")
        if speedup < 0.80:
            print("FAIL: 2-worker throughput collapsed versus 1 worker")
            ok = False
    elif runs["workers_2"]["throughput_rps"] <= runs["workers_1"]["throughput_rps"]:
        print("FAIL: 2-worker throughput must beat 1 worker on an "
              "uncached-dominated workload")
        ok = False

    if args.output:
        Path(args.output).write_text(json.dumps(runs, indent=1) + "\n")
    if args.record and ok:
        config = {
            "requests": args.requests,
            "concurrency": args.concurrency,
            "cached_fraction": args.cached_fraction,
            "workload_qubits": WORKLOAD_QUBITS,
            "workload_cnots": WORKLOAD_CNOTS,
            "engine": "dp",
            "arch": "ibm_qx4",
            "service_workers_per_process": 2,
            "speedup_2_vs_1": round(speedup, 3),
            "single_core_waiver": single_core,
        }
        path = Path(__file__).parent / "BENCH_service.json"
        record_entry(runs, config, path)
        print(f"recorded entry -> {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
