"""Experiment E7 — Table 1, "IBM [12]" column and the paper's headline claim.

For every Table-1 benchmark this runs the Qiskit-0.4-style stochastic swap
mapper (best of 5 trials, as in the paper) and reports its total cost next to
the exact minimum.  The final aggregation test reproduces the headline
statement of Section 5: the heuristic's *added* cost exceeds the minimal
added cost by a large margin (the paper reports ~104% on average, i.e. the
mapping overhead roughly doubles).
"""

import pytest

from repro.benchlib import benchmark_circuit, benchmark_names
from repro.benchlib.table1 import get_record
from repro.heuristic import StochasticSwapMapper
from repro.verify import verify_result

from _table1_common import record_table1_info


@pytest.mark.parametrize("name", benchmark_names())
def test_ibm_style_heuristic_cost(benchmark, qx4, minimal_costs, name):
    """Total cost of the stochastic (Qiskit-0.4-style) mapper, best of 5 trials."""
    record = get_record(name)
    circuit = benchmark_circuit(name)
    mapper = StochasticSwapMapper(qx4, trials=5, seed=0)

    result = benchmark.pedantic(mapper.map, args=(circuit,), rounds=1, iterations=1)

    assert verify_result(result, qx4).compliant
    # A heuristic can never beat the exact minimum.
    assert result.added_cost >= minimal_costs[name]
    record_table1_info(benchmark, name, result, record.paper_ibm_cost)
    benchmark.extra_info["overhead_vs_minimal_total"] = (
        result.total_cost - (record.original_cost + minimal_costs[name])
    )


def test_headline_average_overhead(benchmark, qx4, minimal_costs):
    """Section 5 headline: the heuristic's added cost far exceeds the minimum.

    The paper reports that Qiskit's added operations exceed the minimal ``F``
    by more than 100% on average; with the stand-in circuits the exact ratio
    differs, but the heuristic overhead must remain strictly positive on
    average and substantial (we assert > 25% to keep the check robust).
    """

    def run():
        ratios = []
        for name in benchmark_names():
            minimal_added = minimal_costs[name]
            if minimal_added == 0:
                continue
            circuit = benchmark_circuit(name)
            heuristic = StochasticSwapMapper(qx4, trials=5, seed=0).map(circuit)
            ratios.append((heuristic.added_cost - minimal_added) / minimal_added)
        return 100.0 * sum(ratios) / len(ratios) if ratios else 0.0

    average_overhead = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["average_added_cost_overhead_percent"] = average_overhead
    benchmark.extra_info["paper_reported_percent"] = 104.0
    assert average_overhead > 25.0
