#!/usr/bin/env python3
"""Mapping to a user-defined architecture and exporting OpenQASM.

Shows how to describe your own device as a :class:`CouplingMap`, parse an
OpenQASM circuit, map it exactly, and write the architecture-compliant
OpenQASM back out — the end-to-end flow a tool user would follow.

Run with::

    python examples/map_custom_architecture.py
"""

from repro import CouplingMap, DPMapper, parse_qasm, to_qasm, verify_result
from repro.sim.equivalence import result_is_equivalent

QASM_SOURCE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
t q[2];
cx q[2], q[3];
cx q[3], q[0];
h q[3];
cx q[0], q[2];
measure q -> c;
"""


def main() -> None:
    # A fictional 5-qubit "T-shaped" device: a directed line 0 -> 1 -> 2 -> 3
    # with an extra qubit 4 hanging off the centre.
    device = CouplingMap(
        5,
        [(0, 1), (1, 2), (2, 3), (1, 4)],
        name="t_shape_5",
    )
    print(f"Device {device.name}: edges {sorted(device.edges)}")

    circuit = parse_qasm(QASM_SOURCE, name="ripple")
    print(f"Parsed circuit with {circuit.num_qubits} qubits, "
          f"{circuit.count_cnot()} CNOTs, {circuit.count_single_qubit()} single-qubit gates")

    result = DPMapper(device).map(circuit)
    print(result.summary())
    print("initial mapping (logical -> physical):", result.initial_mapping)
    print("final mapping   (logical -> physical):", result.final_mapping)

    report = verify_result(result, device)
    print("coupling compliant:", report.compliant)
    print("functionally equivalent:", result_is_equivalent(result))

    print("\nMapped OpenQASM:")
    print(to_qasm(result.mapped_circuit))


if __name__ == "__main__":
    main()
