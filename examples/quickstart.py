#!/usr/bin/env python3
"""Quickstart: map a small circuit to IBM QX4 with the exact mappers.

Builds the paper's worked example (Fig. 1), maps it with both exact engines
and with the heuristic baseline, verifies coupling compliance and functional
equivalence, and prints the resulting circuits' cost breakdowns.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DPMapper,
    QuantumCircuit,
    SATMapper,
    StochasticSwapMapper,
    ibm_qx4,
    to_qasm,
    verify_result,
)
from repro.benchlib import paper_example_circuit
from repro.sim.equivalence import result_is_equivalent


def main() -> None:
    qx4 = ibm_qx4()

    # The paper's running example: 4 logical qubits, 5 CNOTs, 3 single-qubit
    # gates (Fig. 1a).  You could equally build your own circuit:
    circuit = paper_example_circuit()
    print("Original circuit:")
    print(to_qasm(circuit))

    # --- exact mapping (dynamic-programming engine: fast, provably minimal)
    exact = DPMapper(qx4).map(circuit)
    print("Exact (DP) mapping      :", exact.summary())

    # --- exact mapping with the paper's SAT formulation (Section 3 + 4.1)
    sat = SATMapper(qx4, use_subsets=True, time_limit=300.0).map(circuit)
    print("Exact (SAT) mapping     :", sat.summary())

    # --- the heuristic baseline the paper compares against
    heuristic = StochasticSwapMapper(qx4, trials=5, seed=0).map(circuit)
    print("Stochastic heuristic    :", heuristic.summary())

    # --- every result is architecture-compliant and functionally equivalent
    for label, result in (("dp", exact), ("sat", sat), ("heuristic", heuristic)):
        report = verify_result(result, qx4)
        equivalent = result_is_equivalent(result)
        print(f"  [{label:9s}] compliant={report.compliant} equivalent={equivalent}")

    print()
    print("Mapped circuit produced by the exact engine:")
    print(to_qasm(exact.mapped_circuit))

    overhead = heuristic.added_cost - exact.added_cost
    print(
        f"The heuristic added {heuristic.added_cost} operations versus the "
        f"minimal {exact.added_cost} (overhead {overhead} operations)."
    )


if __name__ == "__main__":
    main()
