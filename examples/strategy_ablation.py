#!/usr/bin/env python3
"""Ablation of the Section-4.2 permutation-restriction strategies.

For a selection of Table-1 benchmarks, maps each circuit with every strategy
(permutations before all gates, disjoint-qubit boundaries, odd gates, qubit
triangles and a sliding window) and prints the number of permutation spots
|G'|, the resulting cost and the distance to the minimum — the trade-off
Table 1 illustrates.

Run with::

    python examples/strategy_ablation.py
    python examples/strategy_ablation.py --benchmarks ex-1_166 miller_11
"""

import argparse

from repro import DPMapper, ibm_qx4
from repro.benchlib import benchmark_circuit
from repro.exact import get_strategy
from repro.exact.strategies import WindowStrategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--benchmarks", nargs="+",
        default=["3_17_13", "ex-1_166", "rd32-v0_66", "4mod5-v0_19", "alu-v0_27"],
        help="Table-1 benchmark names to ablate",
    )
    args = parser.parse_args()

    qx4 = ibm_qx4()
    strategies = [
        ("all", get_strategy("all")),
        ("disjoint", get_strategy("disjoint")),
        ("odd", get_strategy("odd")),
        ("triangle", get_strategy("triangle")),
        ("window-4", WindowStrategy(window=4)),
    ]

    for name in args.benchmarks:
        circuit = benchmark_circuit(name)
        print(f"\n{name}  ({circuit.num_qubits} qubits, "
              f"{circuit.count_cnot()} CNOTs, {circuit.gate_cost()} gates)")
        print(f"  {'strategy':10s} {'|G prime|':>9s} {'total':>6s} {'added':>6s} "
              f"{'delta-min':>9s} {'time[s]':>8s}")
        minimal_cost = None
        for label, strategy in strategies:
            result = DPMapper(qx4, strategy=strategy).map(circuit)
            if label == "all":
                minimal_cost = result.added_cost
            delta = result.added_cost - minimal_cost
            print(
                f"  {label:10s} {result.num_permutation_spots:9d} "
                f"{result.total_cost:6d} {result.added_cost:6d} "
                f"{delta:9d} {result.runtime_seconds:8.2f}"
            )


if __name__ == "__main__":
    main()
