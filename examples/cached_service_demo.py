"""The service layer end to end: fingerprints, persistent cache, async jobs.

Demonstrates the ``repro.service`` subsystem on top of the batch pipeline:

* content-addressed job fingerprints (``QuantumCircuit.fingerprint`` +
  canonical coupling-map key + engine + options),
* the persistent :class:`~repro.service.store.ResultStore` — the second
  "run" of this script's workload is served entirely from SQLite,
* the async :class:`~repro.service.service.MappingService` with
  submit/status/result job semantics, in-flight deduplication and routing
  across two devices,
* the disk-backed permutation-table warm start (``set_cache_dir``).

Run with::

    PYTHONPATH=src python examples/cached_service_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro import MappingService, ResultStore, ibm_qx4, ibm_qx5
from repro.benchlib import benchmark_circuit, benchmark_names
from repro.circuit import QuantumCircuit
from repro.pipeline import cache_stats, set_cache_dir
from repro.service import describe_job


async def run_workload(cache_dir: Path, label: str) -> None:
    """Submit the same workload against the same persistent store."""
    store = ResultStore.at(cache_dir)
    circuits = [benchmark_circuit(name) for name in benchmark_names(max_qubits=3)]
    wide = QuantumCircuit(9, name="wide_9q")
    wide.cx(0, 8)
    wide.cx(8, 4)

    async with MappingService(
        [ibm_qx4(), ibm_qx5()],
        engine="dp",
        store=store,
        workers=4,
    ) as service:
        job_ids = await service.submit_many(circuits)
        # Too wide for QX4: routed to QX5 automatically.  The exact engines
        # refuse 16-qubit exhaustive enumeration, so this job overrides the
        # engine per submission — a heuristic handles the big device.
        job_ids.append(await service.submit(wide, engine="sabre"))
        # Submitting the first circuit again while (possibly) in flight:
        # either coalesced onto the running job or served from the store.
        job_ids.append(await service.submit(circuits[0]))

        print(f"--- {label} ---")
        for job_id in job_ids:
            try:
                result = await service.result(job_id)
            except Exception as error:  # noqa: BLE001 - demo output
                print(f"  {job_id}: FAILED ({error})")
                continue
            status = service.status(job_id)
            provenance = status["provenance"]
            if provenance.get("cache_hit"):
                source = "cache"
            elif provenance.get("coalesced"):
                source = "coalesced"
            else:
                source = "solved"
            print(
                f"  {status['circuit_name']:14s} {source:7s} "
                f"arch={status['arch']:8s} added={result.added_cost:3d} "
                f"optimal={result.optimal}"
            )
        stats = service.stats()
        print(
            f"  -> {stats['cache_hits']} cache hits, "
            f"{stats['coalesced']} coalesced, {stats['solved']} solved "
            f"(store: {stats['store']['disk_entries']} persisted results)"
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "repro-cache"
        # Persist permutation tables too: a restarted process warm-starts
        # from disk instead of re-running the exhaustive BFS.
        set_cache_dir(str(cache_dir))

        # One fingerprint identifies one mapping instance, names excluded.
        circuit = benchmark_circuit("3_17_13")
        record = describe_job(circuit, ibm_qx4(), "dp", {"strategy": "all"})
        print("job fingerprint:", record["fingerprint"][:16], "…")
        print("  circuit:", record["circuit_fingerprint"][:16], "…")
        print("  arch   :", record["arch_fingerprint"][:16],
              f"… ({record['arch_name']}, name not hashed)")

        # First pass solves everything; the second is served from the store
        # — same store file, fresh service instance, zero mapper calls.
        asyncio.run(run_workload(cache_dir, "first pass (cold store)"))
        asyncio.run(run_workload(cache_dir, "second pass (warm store)"))

        print("\nper-architecture caches:", cache_stats())


if __name__ == "__main__":
    main()
