#!/usr/bin/env python3
"""How far are heuristics from the optimum?  (The paper's motivating question.)

Sweeps random circuits of growing CNOT count on IBM QX4 and reports, for each
size, the exact minimal added cost next to the added cost of two heuristic
generations: the Qiskit-0.4-style stochastic mapper (the paper's baseline)
and a SABRE-style look-ahead mapper (reference [13] of the paper).

Run with::

    python examples/compare_heuristic_vs_exact.py
    python examples/compare_heuristic_vs_exact.py --qubits 4 --sizes 5 10 20 --per-size 5
"""

import argparse
import statistics

from repro import DPMapper, SabreLiteMapper, StochasticSwapMapper, ibm_qx4
from repro.benchlib.generators import random_clifford_t_circuit


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=5, help="logical qubits")
    parser.add_argument("--sizes", type=int, nargs="+", default=[5, 10, 15, 20, 30],
                        help="CNOT counts to sweep")
    parser.add_argument("--per-size", type=int, default=5,
                        help="random circuits per size")
    args = parser.parse_args()

    qx4 = ibm_qx4()
    print(f"{'CNOTs':>6s} {'min F':>8s} {'stochastic':>11s} {'sabre':>8s} "
          f"{'stoch +%':>9s} {'sabre +%':>9s}")

    for num_cnots in args.sizes:
        minima, stochastic_costs, sabre_costs = [], [], []
        for seed in range(args.per_size):
            circuit = random_clifford_t_circuit(
                args.qubits, num_cnots // 2, num_cnots, seed=1000 * num_cnots + seed
            )
            minima.append(DPMapper(qx4).map(circuit).added_cost)
            stochastic_costs.append(
                StochasticSwapMapper(qx4, trials=5, seed=seed).map(circuit).added_cost
            )
            sabre_costs.append(SabreLiteMapper(qx4, seed=seed).map(circuit).added_cost)

        mean_min = statistics.mean(minima)
        mean_stochastic = statistics.mean(stochastic_costs)
        mean_sabre = statistics.mean(sabre_costs)

        def overhead(value):
            return 100.0 * (value - mean_min) / mean_min if mean_min else 0.0

        print(
            f"{num_cnots:6d} {mean_min:8.1f} {mean_stochastic:11.1f} "
            f"{mean_sabre:8.1f} {overhead(mean_stochastic):8.0f}% "
            f"{overhead(mean_sabre):8.0f}%"
        )

    print(
        "\nThe gap between the heuristics and the exact minimum is exactly what "
        "the paper quantifies: knowing the minimum makes the quality of "
        "heuristic mappers measurable."
    )


if __name__ == "__main__":
    main()
