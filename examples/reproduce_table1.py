#!/usr/bin/env python3
"""Regenerate Table 1 of the paper (paper value vs. measured value).

For every benchmark the script prints, side by side with the paper's reported
numbers:

* the original cost (single-qubit gates + CNOTs),
* the minimal total cost after mapping (exact engine),
* the cost under the three Section-4.2 strategies with their |G'| counts,
* the cost of the Qiskit-0.4-style stochastic heuristic (best of 5 runs),

and finishes with the paper's headline aggregate (by how much the heuristic's
added cost exceeds the minimum on average).

The exact columns are produced with the DP exact engine, which computes the
same minimum as the paper's SAT formulation (see DESIGN.md); pass
``--engine sat`` to use the (much slower) pure-Python SAT engine on the
smaller circuits instead.

Run with::

    python examples/reproduce_table1.py                 # full table, DP engine
    python examples/reproduce_table1.py --limit 8       # first 8 benchmarks
    python examples/reproduce_table1.py --engine sat --limit 3
"""

import argparse
import time

from repro import DPMapper, SATMapper, StochasticSwapMapper, ibm_qx4
from repro.benchlib import benchmark_circuit, benchmark_names
from repro.benchlib.table1 import get_record
from repro.exact import get_strategy


def map_exact(qx4, circuit, strategy_name, engine):
    strategy = get_strategy(strategy_name)
    if engine == "sat":
        mapper = SATMapper(qx4, strategy=strategy, use_subsets=True, time_limit=300.0)
    else:
        mapper = DPMapper(qx4, strategy=strategy)
    start = time.monotonic()
    result = mapper.map(circuit)
    return result, time.monotonic() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=None,
                        help="only process the first N benchmarks")
    parser.add_argument("--engine", choices=["dp", "sat"], default="dp",
                        help="exact engine used for the minimal/strategy columns")
    args = parser.parse_args()

    qx4 = ibm_qx4()
    names = benchmark_names()
    if args.limit is not None:
        names = names[: args.limit]

    header = (
        f"{'benchmark':14s} {'n':>2s} {'orig':>5s} "
        f"{'c_min':>6s} {'paper':>6s} | "
        f"{'disj':>5s} {'odd':>5s} {'tri':>5s} | "
        f"{'IBM-style':>9s} {'paper':>6s} {'t[s]':>6s}"
    )
    print(header)
    print("-" * len(header))

    overhead_ratios = []
    for name in names:
        record = get_record(name)
        circuit = benchmark_circuit(name)

        minimal, runtime = map_exact(qx4, circuit, "all", args.engine)
        disjoint, _ = map_exact(qx4, circuit, "disjoint", args.engine)
        odd, _ = map_exact(qx4, circuit, "odd", args.engine)
        triangle, _ = map_exact(qx4, circuit, "triangle", args.engine)
        heuristic = StochasticSwapMapper(qx4, trials=5, seed=0).map(circuit)

        if minimal.added_cost > 0:
            overhead_ratios.append(
                (heuristic.added_cost - minimal.added_cost) / minimal.added_cost
            )

        print(
            f"{name:14s} {record.num_qubits:2d} {record.original_cost:5d} "
            f"{minimal.total_cost:6d} {record.paper_minimal_cost:6d} | "
            f"{disjoint.total_cost:5d} {odd.total_cost:5d} {triangle.total_cost:5d} | "
            f"{heuristic.total_cost:9d} {record.paper_ibm_cost:6d} {runtime:6.2f}"
        )

    if overhead_ratios:
        average = 100.0 * sum(overhead_ratios) / len(overhead_ratios)
        print("-" * len(header))
        print(
            f"Average added-cost overhead of the IBM-style heuristic over the "
            f"minimum: {average:.0f}%  (paper reports ~104% for Qiskit 0.4.15)"
        )


if __name__ == "__main__":
    main()
