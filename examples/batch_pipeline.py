"""Batch-map Table-1 circuits through the mapping pipeline.

Demonstrates the production-shaped entry points added on top of the paper's
algorithms:

* engine resolution through the mapper backend registry,
* ``MappingPipeline.map_many`` with structured per-item results,
* portfolio mode (heuristic upper bound seeding the SAT optimiser),
* the process-wide permutation-table / subset caches.

Run with::

    PYTHONPATH=src python examples/batch_pipeline.py
"""

from repro import MappingPipeline, get_mapper, ibm_qx4
from repro.benchlib import benchmark_circuit, benchmark_names, paper_example_cnot_skeleton
from repro.circuit import QuantumCircuit
from repro.pipeline import cache_stats


def main() -> None:
    qx4 = ibm_qx4()

    # ------------------------------------------------------------------
    # Batch mapping: the 3-qubit Table-1 circuits plus one circuit that is
    # too large for the device — its failure is reported structurally and
    # does not poison the batch.
    too_big = QuantumCircuit(9, name="too_big_for_qx4")
    too_big.cx(0, 8)
    circuits = [benchmark_circuit(name) for name in benchmark_names(max_qubits=3)]
    circuits.append(too_big)

    pipeline = MappingPipeline(
        qx4,
        engine="sat",
        engine_options={"strategy": "triangle", "use_subsets": True},
        workers=4,
    )
    print("batch mapping (sat engine, triangle strategy, subsets):")
    for item in pipeline.map_many(circuits):
        if item.ok:
            print(f"  {item.name:18s} added cost {item.result.added_cost:3d} "
                  f"({item.elapsed_seconds:.2f} s)")
        else:
            print(f"  {item.name:18s} FAILED: {item.error_type}: {item.error}")

    # ------------------------------------------------------------------
    # Portfolio mode on the paper's running example: the SabreLite bound
    # seeds the SAT optimiser, which then proves the minimum of 4.
    portfolio = get_mapper("portfolio", qx4)
    result = portfolio.map(paper_example_cnot_skeleton())
    print("\nportfolio on the paper example:")
    print(f"  heuristic bound     : {result.statistics['portfolio_bound']}")
    print(f"  proven minimal cost : {result.added_cost}")
    print(f"  solver iterations   : {result.statistics['solver_iterations']:.0f}")

    # ------------------------------------------------------------------
    print("\nshared caches:", cache_stats())


if __name__ == "__main__":
    main()
