#!/usr/bin/env python
"""Drive a live ``repro-map listen`` server with nothing but the stdlib.

The wire contract is plain JSON over HTTP, so any language's HTTP client
can submit circuits — this demo uses :mod:`urllib` to show the minimum a
client needs:

1. ``POST /v1/jobs`` with a ``submit-request`` envelope (QASM travels as
   text),
2. ``GET /v1/jobs/{id}/result?wait=...`` to long-poll the result,
3. ``GET /v1/stats`` for the fleet's counters,
4. ``POST /v1/cache/prune`` to broadcast a cache invalidation.

By default the demo boots its own 2-worker server as a subprocess and
tears it down afterwards; point ``--url`` at an already-running server to
skip that.

Usage::

    PYTHONPATH=src python examples/http_client_demo.py
    PYTHONPATH=src python examples/http_client_demo.py --url 127.0.0.1:8137
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

#: The paper's worked example (Fig. 1): 4 qubits, minimal added cost 4 on
#: IBM QX4 (same gate list as ``repro.benchlib.paper_example``).
PAPER_EXAMPLE_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[2];
cx q[2], q[3];
cx q[0], q[1];
t q[0];
h q[1];
cx q[1], q[2];
cx q[2], q[1];
cx q[0], q[1];
"""


#: Transport-level retries per request: a fleet restarting a worker (or
#: the whole supervisor re-binding) refuses connections for a moment, and
#: a well-behaved client rides that out instead of crashing.
RETRIES = 5
RETRY_PAUSE_SECONDS = 0.5


def request(base: str, method: str, target: str, payload: dict = None):
    """One JSON request/response exchange; returns (status, envelope)."""
    body = json.dumps(payload).encode() if payload is not None else None
    last_error = None
    for attempt in range(RETRIES + 1):
        req = urllib.request.Request(
            f"http://{base}{target}", data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=180) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            # Error responses are protocol envelopes too.
            return error.code, json.loads(error.read())
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last_error = error
            if attempt < RETRIES:
                time.sleep(RETRY_PAUSE_SECONDS * (attempt + 1))
    raise SystemExit(f"server at {base} unreachable after retries: {last_error}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None, metavar="HOST:PORT",
        help="talk to an already-running server instead of booting one",
    )
    args = parser.parse_args()

    server = None
    if args.url:
        base = args.url
    else:
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "listen",
             "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        ready = json.loads(server.stdout.readline())
        base = f"127.0.0.1:{ready['port']}"
        print(f"booted a 2-worker server on {base}")

    try:
        # 1. Submit the paper example.
        status, envelope = request(base, "POST", "/v1/jobs", {
            "type": "submit-request",
            "version": 1,
            "payload": {
                "qasm": PAPER_EXAMPLE_QASM,
                "arch": "ibm_qx4",
                "engine": "dp",
                "circuit_name": "paper_example",
            },
        })
        job_id = envelope["payload"]["job_id"]
        print(f"submitted ({status}): job {job_id}, "
              f"status {envelope['payload']['status']}")

        # 2. Long-poll the result.
        status, envelope = request(
            base, "GET", f"/v1/jobs/{job_id}/result?wait=120"
        )
        result = envelope["payload"]["result"]
        print(f"result   ({status}): added cost {result['objective']}, "
              f"proven minimal: {result['optimal']}")

        # 3. Resubmit: the shared store answers without re-solving.
        _status, envelope = request(base, "POST", "/v1/jobs", {
            "type": "submit-request",
            "version": 1,
            "payload": {"qasm": PAPER_EXAMPLE_QASM, "arch": "ibm_qx4",
                        "engine": "dp", "circuit_name": "paper_example"},
        })
        rerun_id = envelope["payload"]["job_id"]
        _status, envelope = request(
            base, "GET", f"/v1/jobs/{rerun_id}/result?wait=120"
        )
        print(f"resubmit : job {rerun_id}, cache hit: "
              f"{envelope['payload']['provenance'].get('cache_hit')}")

        # 4. Fleet stats.
        _status, envelope = request(base, "GET", "/v1/stats")
        payload = envelope["payload"]
        if payload["role"] == "supervisor":
            submitted = sum(
                worker["submitted"] for worker in payload["workers"].values()
            )
            print(f"stats    : {payload['stats']['workers']} workers, "
                  f"{submitted} jobs submitted fleet-wide")
        else:
            print(f"stats    : single worker, "
                  f"{payload['stats']['submitted']} jobs submitted")

        # 5. Broadcast a cache invalidation (memory LRUs drop everywhere).
        _status, envelope = request(base, "POST", "/v1/cache/prune", {
            "type": "prune-request", "version": 1,
            "payload": {"flush_memory": True},
        })
        print(f"prune    : {envelope['payload']['memory_dropped']} in-memory "
              "entries dropped across the fleet")

        # 6. A structured error: unknown jobs are 404 + machine-readable code.
        status, envelope = request(base, "GET", "/v1/jobs/w9-job-999999")
        print(f"error demo ({status}): "
              f"code {envelope['payload']['error_code']!r}")
        return 0
    finally:
        if server is not None:
            server.send_signal(signal.SIGTERM)
            server.wait(timeout=60)
            print("server drained and stopped")


if __name__ == "__main__":
    sys.exit(main())
