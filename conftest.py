"""Pytest bootstrap.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. on fully offline machines where ``pip install -e .`` cannot
download build dependencies).  When the package is installed normally this
file has no effect beyond putting the same sources first on ``sys.path``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
